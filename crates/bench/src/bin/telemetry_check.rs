//! CI gate for flight-recorder exports: validate that every file an
//! example produced is well-formed, that the congestion counters
//! actually made it into the export, and that causal flow events (when
//! present) are correctly paired.
//!
//! Usage: `telemetry_check [--causal] [--preflight] FILE...` — `.json`
//! files are checked as Chrome traces (balanced JSON with a
//! `traceEvents` array), `.jsonl` files line by line. `--causal`
//! additionally runs a tiny deterministic DES workflow in-process and
//! asserts the critical-path engine's invariants (acyclic path,
//! contiguous hops, attribution bounded by the makespan, ×1.0 what-if
//! identity, verdict agreement with the §4.4 model). `--preflight` runs
//! the static plan verifier over the whole conformance scenario set —
//! including the seeded plans the CI matrices derive from
//! `ZIPPER_CHAOS_SEED`/`ZIPPER_GATE_SEED` — so a seeded matrix failure
//! is classified up front as plan-invalid (preflight rejects it here)
//! vs conformance-broken (preflight accepts it and the later diff
//! failed); crafted-bad plans double as a self-test of the rejection
//! codes. Exits nonzero on the first failure, so a CI step can run an
//! example with `ZIPPER_EXPORT_DIR` set and then gate on this.

use std::process::ExitCode;
use std::time::Duration;
use zipper_model::Prediction;
use zipper_policy::{Preflight, PreflightInput, ZvCode};
use zipper_trace::export::{validate_json, validate_jsonl};
use zipper_trace::{Bucket, CausalGraph, CriticalPath};
use zipper_transports::{run, TransportKind, WorkflowSpec};
use zipper_types::{
    BackpressureScript, ChaosEntity, ChaosFault, ChaosPlan, GateRule, Rank, RecoveryPolicy,
    RoutingPolicy,
};
use zipper_workflow::ModelFit;

fn check(path: &str) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if body.is_empty() {
        return Err("empty export".into());
    }
    if path.ends_with(".jsonl") {
        let events = validate_jsonl(&body)?;
        if events < 2 {
            return Err(format!("only {events} events — no spans exported"));
        }
        let flows = body.matches("\"type\":\"flow\"").count();
        Ok(format!("{events} events ({flows} flow records)"))
    } else if path.ends_with(".json") {
        validate_json(&body)?;
        if !body.contains("\"traceEvents\"") {
            return Err("not a Chrome trace: missing traceEvents".into());
        }
        if !body.contains("net.bytes") {
            return Err("no telemetry counters in trace".into());
        }
        // Causal flow events ride in pairs: every `s` (start) needs its
        // binding `f` (finish) or Perfetto draws dangling arrows.
        let starts = body.matches("\"cat\":\"causal\",\"ph\":\"s\"").count();
        let finishes = body.matches("\"cat\":\"causal\",\"ph\":\"f\"").count();
        if starts != finishes {
            return Err(format!(
                "unbalanced flow events: {starts} starts vs {finishes} finishes"
            ));
        }
        Ok(format!(
            "{} bytes of Chrome trace ({starts} flow pairs)",
            body.len()
        ))
    } else {
        Err("unknown extension (expected .json or .jsonl)".into())
    }
}

/// Run the tiny deterministic CFD workflow on the DES and hold the
/// causal engine to its invariants. Same spec as the golden-file tests,
/// so CI exercises the exact configuration the snapshots pin.
fn check_causal_invariants() -> Result<String, String> {
    let mut spec = WorkflowSpec::cfd(2, 1, 2);
    spec.ranks_per_node = 2;
    spec.staging_servers = 1;
    spec.decaf_links = 1;
    let r = run(TransportKind::Zipper, &spec);
    if !r.is_clean() {
        return Err(format!("run not clean: {:?} {:?}", r.fault, r.deadlocked));
    }
    let graph = CausalGraph::build(&r.trace, &r.causal);
    let path = CriticalPath::extract(&graph).ok_or("no critical path extracted")?;
    if path.hops.is_empty() {
        return Err("empty critical path".into());
    }
    for pair in path.hops.windows(2) {
        if pair[0].dst != pair[1].src {
            return Err("hops do not chain contiguously".into());
        }
    }
    for h in &path.hops {
        if h.src >= h.dst {
            return Err("non-forward hop: path not acyclic".into());
        }
    }
    let (total, makespan) = (path.attribution.total(), graph.makespan());
    if total > makespan {
        return Err(format!("path weight {total} exceeds makespan {makespan}"));
    }
    let wf = graph.what_if(Bucket::Comp, 1.0);
    let measured = makespan.as_nanos() as f64;
    if (wf.predicted_ns - measured).abs() > 1.0 {
        return Err(format!(
            "×1.0 what-if does not reproduce the makespan: {} vs {measured}",
            wf.predicted_ns
        ));
    }
    let verdict = path.attribution.verdict();
    let fit = ModelFit::from_trace(
        &r.trace,
        r.end_to_end,
        &Prediction::from_input(&spec.model_input()),
    );
    if !fit.agrees_with(verdict) {
        return Err(format!(
            "verdict {verdict} disagrees with model argmax {}",
            fit.verdict()
        ));
    }
    Ok(format!(
        "{} hops, verdict {verdict}, weight {total} / makespan {makespan}",
        path.hops.len()
    ))
}

/// The conformance suite's scenario shape as a `PreflightInput` (same
/// parameters as `policy_conformance::Scenario::default`).
fn scenario_input() -> PreflightInput {
    PreflightInput {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_rank_step: 4,
        producer_slots: 16,
        consumer_slots: 256,
        high_water_mark: 8,
        concurrent_transfer: false,
        preserve: false,
        routing: RoutingPolicy::SourceAffine,
        recovery: RecoveryPolicy::default(),
        eos_watchdog: false,
        chaos: None,
        backpressure: None,
    }
}

/// The Config C backpressure script (`policy_conformance`): wire 2 held
/// until 3 cumulative steals, wire 4 until a 4th.
fn config_c_script(producers: usize) -> BackpressureScript {
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        script = script
            .with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3))
            .with(Rank(p as u32), 4, GateRule::OpenAfterSteals(4));
    }
    script
}

/// splitmix64 — the same mixer the seeded conformance configs use, so
/// preflight sees the exact plans the seed matrix will run.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn env_seed(var: &str) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Every plan the conformance suites run, as (name, preflight input).
/// The seeded entries read `ZIPPER_CHAOS_SEED`/`ZIPPER_GATE_SEED` like
/// the tests do, so the CI matrix preflights exactly what it will run.
fn conformance_plans() -> Vec<(String, PreflightInput)> {
    let mut plans = Vec::new();
    plans.push((
        "config A (source-affine, message-only)".into(),
        scenario_input(),
    ));

    let mut b = scenario_input();
    b.concurrent_transfer = true;
    b.preserve = true;
    b.routing = RoutingPolicy::RoundRobin;
    plans.push(("config B (round-robin + concurrent + Preserve)".into(), b));

    let mut c = scenario_input();
    c.concurrent_transfer = true;
    c.routing = RoutingPolicy::RoundRobin;
    c.backpressure = Some(config_c_script(2));
    plans.push(("config C (scripted partial stealing)".into(), c));

    let mut d = scenario_input();
    d.preserve = true;
    d.routing = RoutingPolicy::RoundRobin;
    d.eos_watchdog = true;
    d.chaos = Some(
        ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(ChaosEntity::Sender(Rank(0)), 4, ChaosFault::CorruptWire)
            .with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::FailSend)
            .with(
                ChaosEntity::Sender(Rank(1)),
                3,
                ChaosFault::DelayWire(Duration::from_millis(2)),
            )
            .with(ChaosEntity::Output(Rank(0)), 2, ChaosFault::PfsWriteFail),
    );
    plans.push(("config D (chaos degradation)".into(), d));

    let mut e = scenario_input();
    e.high_water_mark = 0;
    e.concurrent_transfer = true;
    e.preserve = true;
    e.routing = RoutingPolicy::RoundRobin;
    e.recovery = RecoveryPolicy {
        writer_cooldown: Duration::from_millis(1),
        max_writer_revivals: 1,
        max_consumer_restarts: 1,
    };
    e.chaos = Some(
        ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 1, ChaosFault::DetachSender)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::DetachSender)
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_millis(1)),
            )
            .with(ChaosEntity::Writer(Rank(0)), 2, ChaosFault::PfsWriteFail)
            .with(ChaosEntity::Analysis(Rank(1)), 3, ChaosFault::CrashApp),
    );
    plans.push(("config E (chaos recovery)".into(), e));

    // Seeded chaos: 4 producers, message-only, Preserve, round-robin —
    // ordinals confined to the 8 data wires.
    let chaos_seed = env_seed("ZIPPER_CHAOS_SEED");
    let mut state = chaos_seed;
    let kinds = [
        ChaosFault::DropWire,
        ChaosFault::CorruptWire,
        ChaosFault::DelayWire(Duration::from_micros(200)),
        ChaosFault::FailSend,
    ];
    let mut plan = ChaosPlan::new();
    for p in 0..4 {
        let ordinal = 1 + splitmix(&mut state) % 8;
        let kind = kinds[(splitmix(&mut state) % kinds.len() as u64) as usize];
        plan = plan.with(ChaosEntity::Sender(Rank(p as u32)), ordinal, kind);
    }
    let mut seeded_chaos = scenario_input();
    seeded_chaos.producers = 4;
    seeded_chaos.preserve = true;
    seeded_chaos.routing = RoutingPolicy::RoundRobin;
    seeded_chaos.chaos = Some(plan);
    plans.push((format!("seeded chaos (seed {chaos_seed})"), seeded_chaos));

    // DropEos in concurrent mode, watchdog armed.
    let mut dropped = scenario_input();
    dropped.concurrent_transfer = true;
    dropped.eos_watchdog = true;
    dropped.chaos =
        Some(ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos));
    plans.push(("dropped EOS, concurrent".into(), dropped));

    // Seeded gate: one credit window per producer inside the 8-block run.
    let gate_seed = env_seed("ZIPPER_GATE_SEED");
    let mut state = gate_seed.wrapping_mul(0x5851_f42d_4c95_7f2d);
    let mut script = BackpressureScript::new();
    for p in 0..2 {
        let wire = 1 + splitmix(&mut state) % 3;
        let target = 1 + splitmix(&mut state) % (8 - wire - 1);
        script = script.with(Rank(p as u32), wire, GateRule::OpenAfterSteals(target));
    }
    let mut seeded_gate = scenario_input();
    seeded_gate.concurrent_transfer = true;
    seeded_gate.routing = RoutingPolicy::RoundRobin;
    seeded_gate.backpressure = Some(script);
    plans.push((format!("seeded gate (seed {gate_seed})"), seeded_gate));

    // Gate + chaos composed on the same wire (each producer's wire 2
    // held until 3 steals; p0's released wire dropped, p1's delayed).
    let mut composed = scenario_input();
    composed.concurrent_transfer = true;
    composed.routing = RoutingPolicy::RoundRobin;
    let mut script = BackpressureScript::new();
    for p in 0..2 {
        script = script.with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3));
    }
    composed.backpressure = Some(script);
    composed.chaos = Some(
        ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_micros(100)),
            ),
    );
    plans.push(("gate + chaos on one wire".into(), composed));

    plans
}

/// Crafted-bad plans that must be rejected with their documented code —
/// a self-test that the verifier's rejection surface is alive before CI
/// trusts its acceptance verdicts.
fn negative_plans() -> Vec<(&'static str, PreflightInput, ZvCode)> {
    let mut unsat = scenario_input();
    unsat.concurrent_transfer = true;
    unsat.backpressure =
        Some(BackpressureScript::new().with(Rank(0), 6, GateRule::OpenAfterSteals(5)));

    let mut dead = scenario_input();
    dead.chaos =
        Some(ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 99, ChaosFault::DropWire));

    let mut crash = scenario_input();
    crash.chaos =
        Some(ChaosPlan::new().with(ChaosEntity::Analysis(Rank(0)), 2, ChaosFault::CrashApp));

    let mut overflow = scenario_input();
    overflow.blocks_per_rank_step = zipper_policy::preflight::TAG_BLOCK_LIMIT + 1;

    vec![
        (
            "unsatisfiable gate window",
            unsat,
            ZvCode::UnsatisfiableWindow,
        ),
        ("dead chaos ordinal", dead, ZvCode::DeadOrdinal),
        ("zero-budget CrashApp", crash, ZvCode::UnhealedCrash),
        ("tag-overflow spec", overflow, ZvCode::TagBlockOverflow),
    ]
}

/// `--preflight`: every conformance plan is accepted with zero errors,
/// every crafted-bad plan is rejected with its documented code.
fn check_preflight() -> Result<String, String> {
    let plans = conformance_plans();
    let mut accepted = 0;
    for (name, input) in &plans {
        let report = Preflight::check(input);
        if report.is_rejected() {
            return Err(format!(
                "{name} rejected by preflight:\n{}",
                report.render()
            ));
        }
        accepted += 1;
    }
    let negatives = negative_plans();
    let mut rejected = 0;
    for (name, input, want) in &negatives {
        let report = Preflight::check(input);
        if !report.is_rejected() {
            return Err(format!(
                "{name} accepted but must be rejected:\n{}",
                report.render()
            ));
        }
        if !report.has(*want) {
            return Err(format!(
                "{name} rejected without {} ({want:?}):\n{}",
                want.code(),
                report.render()
            ));
        }
        rejected += 1;
    }
    Ok(format!(
        "{accepted} conformance plans accepted, {rejected}/{} negative plans rejected with \
         their documented codes",
        negatives.len()
    ))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let causal = args.iter().any(|a| a == "--causal");
    let preflight = args.iter().any(|a| a == "--preflight");
    args.retain(|a| a != "--causal" && a != "--preflight");
    if args.is_empty() && !causal && !preflight {
        eprintln!("usage: telemetry_check [--causal] [--preflight] FILE...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    if preflight {
        match check_preflight() {
            Ok(detail) => println!("ok   static preflight: {detail}"),
            Err(why) => {
                eprintln!("FAIL static preflight: {why}");
                failed = true;
            }
        }
    }
    if causal {
        match check_causal_invariants() {
            Ok(detail) => println!("ok   critical-path invariants: {detail}"),
            Err(why) => {
                eprintln!("FAIL critical-path invariants: {why}");
                failed = true;
            }
        }
    }
    for path in &args {
        match check(path) {
            Ok(detail) => println!("ok   {path}: {detail}"),
            Err(why) => {
                eprintln!("FAIL {path}: {why}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
