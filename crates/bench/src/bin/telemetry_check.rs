//! CI gate for flight-recorder exports: validate that every file an
//! example produced is well-formed, that the congestion counters
//! actually made it into the export, and that causal flow events (when
//! present) are correctly paired.
//!
//! Usage: `telemetry_check [--causal] FILE...` — `.json` files are
//! checked as Chrome traces (balanced JSON with a `traceEvents` array),
//! `.jsonl` files line by line. `--causal` additionally runs a tiny
//! deterministic DES workflow in-process and asserts the critical-path
//! engine's invariants (acyclic path, contiguous hops, attribution
//! bounded by the makespan, ×1.0 what-if identity, verdict agreement
//! with the §4.4 model). Exits nonzero on the first failure, so a CI
//! step can run an example with `ZIPPER_EXPORT_DIR` set and then gate
//! on this.

use std::process::ExitCode;
use zipper_model::Prediction;
use zipper_trace::export::{validate_json, validate_jsonl};
use zipper_trace::{Bucket, CausalGraph, CriticalPath};
use zipper_transports::{run, TransportKind, WorkflowSpec};
use zipper_workflow::ModelFit;

fn check(path: &str) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if body.is_empty() {
        return Err("empty export".into());
    }
    if path.ends_with(".jsonl") {
        let events = validate_jsonl(&body)?;
        if events < 2 {
            return Err(format!("only {events} events — no spans exported"));
        }
        let flows = body.matches("\"type\":\"flow\"").count();
        Ok(format!("{events} events ({flows} flow records)"))
    } else if path.ends_with(".json") {
        validate_json(&body)?;
        if !body.contains("\"traceEvents\"") {
            return Err("not a Chrome trace: missing traceEvents".into());
        }
        if !body.contains("net.bytes") {
            return Err("no telemetry counters in trace".into());
        }
        // Causal flow events ride in pairs: every `s` (start) needs its
        // binding `f` (finish) or Perfetto draws dangling arrows.
        let starts = body.matches("\"cat\":\"causal\",\"ph\":\"s\"").count();
        let finishes = body.matches("\"cat\":\"causal\",\"ph\":\"f\"").count();
        if starts != finishes {
            return Err(format!(
                "unbalanced flow events: {starts} starts vs {finishes} finishes"
            ));
        }
        Ok(format!(
            "{} bytes of Chrome trace ({starts} flow pairs)",
            body.len()
        ))
    } else {
        Err("unknown extension (expected .json or .jsonl)".into())
    }
}

/// Run the tiny deterministic CFD workflow on the DES and hold the
/// causal engine to its invariants. Same spec as the golden-file tests,
/// so CI exercises the exact configuration the snapshots pin.
fn check_causal_invariants() -> Result<String, String> {
    let mut spec = WorkflowSpec::cfd(2, 1, 2);
    spec.ranks_per_node = 2;
    spec.staging_servers = 1;
    spec.decaf_links = 1;
    let r = run(TransportKind::Zipper, &spec);
    if !r.is_clean() {
        return Err(format!("run not clean: {:?} {:?}", r.fault, r.deadlocked));
    }
    let graph = CausalGraph::build(&r.trace, &r.causal);
    let path = CriticalPath::extract(&graph).ok_or("no critical path extracted")?;
    if path.hops.is_empty() {
        return Err("empty critical path".into());
    }
    for pair in path.hops.windows(2) {
        if pair[0].dst != pair[1].src {
            return Err("hops do not chain contiguously".into());
        }
    }
    for h in &path.hops {
        if h.src >= h.dst {
            return Err("non-forward hop: path not acyclic".into());
        }
    }
    let (total, makespan) = (path.attribution.total(), graph.makespan());
    if total > makespan {
        return Err(format!("path weight {total} exceeds makespan {makespan}"));
    }
    let wf = graph.what_if(Bucket::Comp, 1.0);
    let measured = makespan.as_nanos() as f64;
    if (wf.predicted_ns - measured).abs() > 1.0 {
        return Err(format!(
            "×1.0 what-if does not reproduce the makespan: {} vs {measured}",
            wf.predicted_ns
        ));
    }
    let verdict = path.attribution.verdict();
    let fit = ModelFit::from_trace(
        &r.trace,
        r.end_to_end,
        &Prediction::from_input(&spec.model_input()),
    );
    if !fit.agrees_with(verdict) {
        return Err(format!(
            "verdict {verdict} disagrees with model argmax {}",
            fit.verdict()
        ));
    }
    Ok(format!(
        "{} hops, verdict {verdict}, weight {total} / makespan {makespan}",
        path.hops.len()
    ))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let causal = args.iter().any(|a| a == "--causal");
    args.retain(|a| a != "--causal");
    if args.is_empty() && !causal {
        eprintln!("usage: telemetry_check [--causal] FILE...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    if causal {
        match check_causal_invariants() {
            Ok(detail) => println!("ok   critical-path invariants: {detail}"),
            Err(why) => {
                eprintln!("FAIL critical-path invariants: {why}");
                failed = true;
            }
        }
    }
    for path in &args {
        match check(path) {
            Ok(detail) => println!("ok   {path}: {detail}"),
            Err(why) => {
                eprintln!("FAIL {path}: {why}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
