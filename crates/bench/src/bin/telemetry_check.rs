//! CI gate for flight-recorder exports: validate that every file an
//! example produced is well-formed, and that the congestion counters
//! actually made it into the export.
//!
//! Usage: `telemetry_check FILE...` — `.json` files are checked as Chrome
//! traces (balanced JSON with a `traceEvents` array), `.jsonl` files line
//! by line. Exits nonzero on the first malformed file, so a CI step can
//! run an example with `ZIPPER_EXPORT_DIR` set and then gate on this.

use std::process::ExitCode;
use zipper_trace::export::{validate_json, validate_jsonl};

fn check(path: &str) -> Result<String, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    if body.is_empty() {
        return Err("empty export".into());
    }
    if path.ends_with(".jsonl") {
        let events = validate_jsonl(&body)?;
        if events < 2 {
            return Err(format!("only {events} events — no spans exported"));
        }
        Ok(format!("{events} events"))
    } else if path.ends_with(".json") {
        validate_json(&body)?;
        if !body.contains("\"traceEvents\"") {
            return Err("not a Chrome trace: missing traceEvents".into());
        }
        if !body.contains("net.bytes") {
            return Err("no telemetry counters in trace".into());
        }
        Ok(format!("{} bytes of Chrome trace", body.len()))
    } else {
        Err("unknown extension (expected .json or .jsonl)".into())
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: telemetry_check FILE...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match check(path) {
            Ok(detail) => println!("ok   {path}: {detail}"),
            Err(why) => {
                eprintln!("FAIL {path}: {why}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
