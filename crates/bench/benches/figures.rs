//! One Criterion bench per paper table/figure: each benchmark runs a
//! reduced-scale version of the experiment that regenerates that figure
//! (the full-scale tables come from `cargo run -p bench --bin experiments`).
//! Benchmarked quantity: wall-clock of the discrete-event replay, i.e. how
//! fast this reproduction regenerates the figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zipper_apps::Complexity;
use zipper_model::{integrated_time, non_integrated_time};
use zipper_transports::{run_with_detail, TransportKind, WorkflowSpec};
use zipper_types::SimTime;

fn tiny_cfd() -> WorkflowSpec {
    let mut s = WorkflowSpec::cfd(16, 8, 4);
    s.ranks_per_node = 8;
    s.staging_servers = 2;
    s.decaf_links = 4;
    s
}

/// Fig. 2 / Tables 1-2: one bench per transport on the CFD workflow.
fn fig2_transports(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_transports");
    let spec = tiny_cfd();
    for kind in TransportKind::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let r = run_with_detail(kind, &spec, false);
                    assert!(r.is_clean());
                    std::hint::black_box(r.end_to_end)
                })
            },
        );
    }
    g.finish();
}

/// Figs. 3 & 11: the exact pipeline schedules.
fn fig3_11_pipeline(c: &mut Criterion) {
    let stages = [
        SimTime::from_millis(25),
        SimTime::from_millis(10),
        SimTime::from_millis(10),
        SimTime::from_millis(15),
    ];
    c.bench_function("fig11_pipeline_model_10k_blocks", |b| {
        b.iter(|| {
            let it = integrated_time(10_000, &stages);
            let ni = non_integrated_time(10_000, &stages);
            std::hint::black_box((it, ni))
        })
    });
}

/// Figs. 4-6 & 17/19: trace-figure replay (full span detail retained).
fn fig4_6_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_6_traces");
    let spec = tiny_cfd();
    for kind in [
        TransportKind::DimesNative,
        TransportKind::Flexpath,
        TransportKind::Decaf,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let r = run_with_detail(kind, &spec, true);
                    assert!(r.is_clean());
                    std::hint::black_box(r.trace.spans().len())
                })
            },
        );
    }
    g.finish();
}

/// Figs. 12-13: synthetic breakdown per complexity (No-Preserve +
/// Preserve).
fn fig12_13_synthetics(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_13_synthetics");
    for cx in Complexity::ALL {
        for preserve in [false, true] {
            let name = format!("{}{}", cx.label(), if preserve { "+preserve" } else { "" });
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                let mut spec = WorkflowSpec::synthetic(cx, 8, 4, 32 << 20, 1 << 20);
                spec.preserve = preserve;
                b.iter(|| {
                    let r = run_with_detail(TransportKind::Zipper, &spec, false);
                    assert!(r.is_clean());
                    std::hint::black_box(r.end_to_end)
                })
            });
        }
    }
    g.finish();
}

/// Figs. 14-15: the dual-channel ablation (message-only vs concurrent).
fn fig14_15_dual_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_15_dual_channel");
    for concurrent in [false, true] {
        let name = if concurrent {
            "concurrent"
        } else {
            "message-only"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut spec = WorkflowSpec::synthetic(Complexity::Linear, 28, 14, 64 << 20, 1 << 20);
            spec.concurrent_transfer = concurrent;
            b.iter(|| {
                let r = run_with_detail(TransportKind::Zipper, &spec, false);
                assert!(r.is_clean());
                std::hint::black_box((r.sim_finish, r.xmit_wait_sim))
            })
        });
    }
    g.finish();
}

/// Figs. 16 & 18: one weak-scaling point per method per application.
fn fig16_18_scaling_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_18_scaling_point");
    g.sample_size(10);
    for (app, mk) in [
        (
            "cfd",
            WorkflowSpec::cfd as fn(usize, usize, u64) -> WorkflowSpec,
        ),
        (
            "lammps",
            WorkflowSpec::lammps as fn(usize, usize, u64) -> WorkflowSpec,
        ),
    ] {
        for kind in [
            TransportKind::MpiIo,
            TransportKind::Decaf,
            TransportKind::Zipper,
        ] {
            let name = format!("{app}/{}", kind.name());
            g.bench_function(BenchmarkId::from_parameter(name), |b| {
                let mut spec = mk(32, 16, 3);
                spec.ranks_per_node = 16;
                spec.decaf_links = 8;
                spec.staging_servers = 4;
                b.iter(|| {
                    let r = run_with_detail(kind, &spec, false);
                    assert!(r.is_clean());
                    std::hint::black_box(r.end_to_end)
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = fig2_transports, fig3_11_pipeline, fig4_6_traces, fig12_13_synthetics, fig14_15_dual_channel, fig16_18_scaling_point
}
criterion_main!(figures);
