//! Benchmarks of the real (threaded) Zipper runtime: end-to-end block
//! throughput and the ablations DESIGN.md calls out (block size,
//! dual-channel switch, buffer depth).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use zipper_types::{ByteSize, GlobalPos, StepId, WorkflowConfig};
use zipper_workflow::{
    run_workflow, run_workflow_traced, NetworkOptions, StorageOptions, TraceOptions,
};

fn run_once(cfg: &WorkflowConfig, net: NetworkOptions) {
    let steps = cfg.steps;
    let slab = cfg.bytes_per_rank_step.as_u64() as usize;
    let (report, _) = run_workflow(
        cfg,
        net,
        StorageOptions::Memory,
        move |rank, writer| {
            for s in 0..steps {
                writer.write_slab(
                    StepId(s),
                    GlobalPos::default(),
                    Bytes::from(vec![rank.0 as u8; slab]),
                );
            }
        },
        |_r, reader| while reader.read().is_some() {},
    );
    report.assert_complete();
}

/// Ablation 1: fine-grain block size sweep on the threaded runtime.
fn block_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_block_size");
    let total = ByteSize::mib(4);
    for block_kib in [16u64, 64, 256, 1024] {
        g.throughput(Throughput::Bytes(total.as_u64() * 2));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{block_kib}KiB")),
            &block_kib,
            |b, &kib| {
                let mut cfg = WorkflowConfig {
                    producers: 2,
                    consumers: 1,
                    steps: 4,
                    bytes_per_rank_step: ByteSize::mib(1),
                    ..Default::default()
                };
                cfg.tuning.block_size = ByteSize::kib(kib);
                b.iter(|| run_once(&cfg, NetworkOptions::default()));
            },
        );
    }
    g.finish();
}

/// Ablation 3: dual channel on/off over a constrained channel.
fn dual_channel_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_dual_channel");
    g.sample_size(10);
    for concurrent in [false, true] {
        let name = if concurrent {
            "concurrent"
        } else {
            "message-only"
        };
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut cfg = WorkflowConfig {
                producers: 2,
                consumers: 1,
                steps: 3,
                bytes_per_rank_step: ByteSize::kib(512),
                ..Default::default()
            };
            cfg.tuning.block_size = ByteSize::kib(64);
            cfg.tuning.producer_slots = 4;
            cfg.tuning.high_water_mark = 2;
            cfg.tuning.concurrent_transfer = concurrent;
            // 40 MB/s channel: producer-bound, so stealing matters.
            let net = NetworkOptions::throttled(2, 40e6, Duration::ZERO);
            b.iter(|| run_once(&cfg, net.clone()));
        });
    }
    g.finish();
}

/// Instrumentation overhead: the same block-size workload with tracing
/// off, lane-totals only, full span capture (+ wire lanes), and full
/// capture plus the telemetry registry and its background sampler. The
/// acceptance bar is that `off` tracks the untraced baseline within
/// noise (< 5%): an inert recorder never reads the clock and never takes
/// a lock, and a disabled telemetry handle is a no-op branch, so disabled
/// instrumentation must be free (the inertness itself is asserted by
/// `telemetry_off_report_is_inert` in zipper-workflow — this bench
/// measures the cost side of the same bar).
fn instrumentation_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_instrumentation");
    g.sample_size(10);
    let workload = || {
        let mut cfg = WorkflowConfig {
            producers: 2,
            consumers: 1,
            steps: 4,
            bytes_per_rank_step: ByteSize::mib(1),
            ..Default::default()
        };
        cfg.tuning.block_size = ByteSize::kib(64);
        cfg
    };
    let run_traced = |cfg: &WorkflowConfig, trace: TraceOptions| {
        let steps = cfg.steps;
        let slab = cfg.bytes_per_rank_step.as_u64() as usize;
        let (report, _) = run_workflow_traced(
            cfg,
            NetworkOptions::default(),
            StorageOptions::Memory,
            trace,
            move |rank, writer| {
                for s in 0..steps {
                    writer.write_slab(
                        StepId(s),
                        GlobalPos::default(),
                        Bytes::from(vec![rank.0 as u8; slab]),
                    );
                }
            },
            |_r, reader| while reader.read().is_some() {},
        );
        report.assert_complete();
    };
    g.bench_function(BenchmarkId::from_parameter("untraced"), |b| {
        let cfg = workload();
        b.iter(|| run_once(&cfg, NetworkOptions::default()));
    });
    // `off` holds the bar for the causal layer too: the edge-recording
    // call sites (wire joins, queue push/pop, steal, gate, EOS) are
    // compiled in unconditionally, so `off` ≈ `untraced` proves a
    // disabled `CausalSink` costs a branch and nothing more.
    // `full+causal` prices the enabled engine against plain `full`.
    for (name, trace) in [
        ("off", TraceOptions::off()),
        ("totals", TraceOptions::default()),
        ("full", TraceOptions::full()),
        (
            "full+telemetry",
            TraceOptions::full().with_telemetry(Duration::from_millis(1)),
        ),
        ("full+causal", TraceOptions::full().with_causal()),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let cfg = workload();
            b.iter(|| run_traced(&cfg, trace));
        });
    }
    g.finish();
}

/// Ablation 5: producer buffer depth.
fn buffer_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_buffer_depth");
    g.sample_size(10);
    for slots in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            let mut cfg = WorkflowConfig {
                producers: 2,
                consumers: 1,
                steps: 3,
                bytes_per_rank_step: ByteSize::kib(512),
                ..Default::default()
            };
            cfg.tuning.block_size = ByteSize::kib(64);
            cfg.tuning.producer_slots = slots;
            cfg.tuning.high_water_mark = slots.saturating_sub(1).max(1).min(slots - 1).max(1);
            cfg.tuning.high_water_mark = (slots * 3 / 4).max(1).min(slots - 1);
            let net = NetworkOptions::throttled(2, 80e6, Duration::ZERO);
            b.iter(|| run_once(&cfg, net.clone()));
        });
    }
    g.finish();
}

criterion_group! {
    name = runtime;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = block_size_sweep, dual_channel_ablation, instrumentation_overhead, buffer_depth
}
criterion_main!(runtime);
