//! Micro-benchmarks of the computational kernels: the LBM and MD steps,
//! the synthetic generators, the analyses, and the runtime's block queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zipper_apps::analysis::{block_variance, mean_squared_displacement, MomentAccumulator};
use zipper_apps::lbm::Lbm;
use zipper_apps::md::LjMd;
use zipper_apps::synthetic::{decode_block, generate_block, Complexity};
use zipper_core::BlockQueue;
use zipper_types::block::deterministic_payload;
use zipper_types::{Block, BlockId, GlobalPos, Rank, StepId};

fn bench_lbm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbm_step");
    for dim in [8usize, 16] {
        let cells = dim * dim * dim;
        g.throughput(Throughput::Elements(cells as u64));
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut lbm = Lbm::new(dim, dim, dim, 0.8, [1e-5, 0.0, 0.0]);
            b.iter(|| {
                lbm.step();
                std::hint::black_box(lbm.total_mass())
            });
        });
    }
    g.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("md_step");
    for cells in [3usize, 5] {
        let atoms = 4 * cells.pow(3);
        g.throughput(Throughput::Elements(atoms as u64));
        g.bench_with_input(BenchmarkId::from_parameter(atoms), &cells, |b, &cells| {
            let mut md = LjMd::fcc(cells, 0.8, 0.5, 1);
            b.iter(|| {
                md.step();
                std::hint::black_box(md.kinetic_energy())
            });
        });
    }
    g.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthetic_block");
    let bytes = 256 << 10;
    g.throughput(Throughput::Bytes(bytes as u64));
    for cx in Complexity::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(cx.label()), &cx, |b, &cx| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(generate_block(cx, bytes, seed))
            });
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    let blk = generate_block(Complexity::Linear, 1 << 20, 7);
    let samples = decode_block(&blk);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("variance_1MiB", |b| {
        b.iter(|| std::hint::black_box(block_variance(&samples)))
    });
    g.bench_function("moments4_1MiB", |b| {
        b.iter(|| {
            let mut acc = MomentAccumulator::new(4);
            acc.update(&samples);
            std::hint::black_box(acc.moment(4))
        })
    });
    let md = LjMd::fcc(4, 0.8, 0.5, 1);
    let reference = md.positions().to_vec();
    g.bench_function("msd_256_atoms", |b| {
        b.iter(|| {
            std::hint::black_box(mean_squared_displacement(
                md.positions(),
                &reference,
                md.box_len(),
            ))
        })
    });
    g.finish();
}

fn bench_block_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_queue");
    let id = BlockId::new(Rank(0), StepId(0), 0);
    let block = Block::from_payload(
        Rank(0),
        StepId(0),
        0,
        1,
        GlobalPos::default(),
        deterministic_payload(id, 4096),
    );
    g.bench_function("push_pop_uncontended", |b| {
        let q = BlockQueue::new(64);
        b.iter(|| {
            q.push(block.clone()).unwrap();
            std::hint::black_box(q.pop().0)
        })
    });
    g.bench_function("push_pop_2threads", |b| {
        b.iter_custom(|iters| {
            let q = std::sync::Arc::new(BlockQueue::new(64));
            let q2 = q.clone();
            let blk = block.clone();
            // iter_custom requires hand-timing on the wall clock.
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            let producer = std::thread::spawn(move || {
                for _ in 0..iters {
                    q2.push(blk.clone()).unwrap();
                }
                q2.close();
            });
            let mut n = 0u64;
            while let (Some(_b), _) = q.pop() {
                n += 1;
            }
            producer.join().unwrap();
            assert_eq!(n, iters);
            start.elapsed()
        })
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(1)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_lbm, bench_md, bench_synthetic, bench_analysis, bench_block_queue
}
criterion_main!(kernels);
