//! A TCP transport for the Zipper runtime: the cross-process counterpart
//! of the in-process [`crate::ChannelMesh`], so producer and consumer
//! *applications* can run in separate OS processes (or separate machines)
//! exactly as the paper's workflows do — "each participant application is
//! launched by its own mpirun … such that there are multiple failure
//! domains" (§2).
//!
//! The wire format is a self-contained length-prefixed binary framing of
//! [`Wire`] (no external serializer): every field of the block header is
//! encoded explicitly, so the format is stable and inspectable.
//!
//! ```text
//! frame   := u64 body_len | body
//! body    := 0u8 msg | 1u8 eos
//! eos     := u32 producer_rank | u8 channel (0 = Net, 1 = Disk)
//! msg     := u32 n_ids | n_ids × u64 block_id_key
//!          | u8 has_data
//!          | [ u64 id_key | u64 pos.{x,y,z} | u32 blocks_in_step
//!            | u64 payload_len | payload ]
//! ```

// Threaded substrate: real socket timeouts/backoff are this module's job —
// the DES twin models the wire in virtual time.
#![allow(clippy::disallowed_methods)]
use crate::transport::{MeshReceiver, Wire, WireSender};
use bytes::Bytes;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;
use zipper_policy::Channel;
use zipper_trace::{CounterId, HistogramId, SpanKind, Telemetry, TraceSink};
use zipper_types::{
    Block, BlockHeader, BlockId, Error, GlobalPos, MixedMessage, Rank, Result, RetryPolicy,
    RuntimeError,
};

/// Upper bound on a single frame body. A length prefix is attacker- (or
/// corruption-) controlled input: without a cap, a flipped bit in the
/// 8-byte prefix would make the reader allocate and zero an arbitrary
/// amount of memory before the first payload byte arrives. 1 GiB is far
/// above any real mixed message (block payloads are megabytes).
pub const MAX_FRAME: usize = 1 << 30;

/// Encode one wire into its frame body (without the length prefix).
pub fn encode_wire(wire: &Wire) -> Vec<u8> {
    let mut out = Vec::new();
    match wire {
        Wire::Eos(rank, channel) => {
            out.push(1u8);
            out.extend_from_slice(&rank.0.to_le_bytes());
            out.push(match channel {
                Channel::Net => 0u8,
                Channel::Disk => 1u8,
            });
        }
        Wire::Msg(m) => {
            out.push(0u8);
            out.extend_from_slice(&(m.on_disk.len() as u32).to_le_bytes());
            for id in &m.on_disk {
                out.extend_from_slice(&id.as_u64().to_le_bytes());
            }
            match &m.data {
                None => out.push(0u8),
                Some(b) => {
                    out.push(1u8);
                    let h = &b.header;
                    out.extend_from_slice(&h.id.as_u64().to_le_bytes());
                    out.extend_from_slice(&h.pos.x.to_le_bytes());
                    out.extend_from_slice(&h.pos.y.to_le_bytes());
                    out.extend_from_slice(&h.pos.z.to_le_bytes());
                    out.extend_from_slice(&h.blocks_in_step.to_le_bytes());
                    out.extend_from_slice(&h.len.to_le_bytes());
                    out.extend_from_slice(&b.payload);
                }
            }
        }
    }
    out
}

/// Decode one frame body back into a wire.
pub fn decode_wire(body: &[u8]) -> Result<Wire> {
    let bad = |what: &str| Error::Storage(format!("malformed TCP frame: {what}"));
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Result<&[u8]> {
        // checked_add: `n` can be a hostile 64-bit length; `at + n` must
        // not wrap around and alias an earlier slice.
        let end = at.checked_add(n).ok_or_else(|| bad("truncated"))?;
        let s = body.get(*at..end).ok_or_else(|| bad("truncated"))?;
        *at = end;
        Ok(s)
    };
    let kind = *take(&mut at, 1)?.first().unwrap();
    match kind {
        1 => {
            let rank = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            // The channel byte is mandatory: a 5-byte eos body is the only
            // valid shape. Bodies from the pre-channel format (4 bytes) are
            // rejected, which surfaces as an in-band Transport fault rather
            // than a silently mis-attributed EOS.
            let channel = match *take(&mut at, 1)?.first().unwrap() {
                0 => Channel::Net,
                1 => Channel::Disk,
                other => return Err(bad(&format!("eos channel byte {other}"))),
            };
            if at != body.len() {
                return Err(bad("trailing bytes"));
            }
            Ok(Wire::Eos(Rank(rank), channel))
        }
        0 => {
            let n_ids = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
            // The count is attacker-controlled: every ID takes 8 body
            // bytes, so a count the remaining body cannot hold is
            // malformed — reject it *before* sizing the Vec, otherwise a
            // 4-byte prefix could demand a 32 GiB allocation.
            if n_ids.saturating_mul(8) > body.len().saturating_sub(at) {
                return Err(bad("id count exceeds frame"));
            }
            let mut on_disk = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                let key = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
                on_disk.push(BlockId::from_u64(key));
            }
            let has_data = *take(&mut at, 1)?.first().unwrap();
            let data = match has_data {
                0 => None,
                1 => {
                    let key = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
                    let x = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
                    let y = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
                    let z = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
                    let bis = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
                    let len = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap()) as usize;
                    let payload = take(&mut at, len)?;
                    let header = BlockHeader::new(
                        BlockId::from_u64(key),
                        GlobalPos::new(x, y, z),
                        len as u64,
                        bis,
                    );
                    Some(Block::new(header, Bytes::copy_from_slice(payload)))
                }
                other => return Err(bad(&format!("has_data byte {other}"))),
            };
            if at != body.len() {
                return Err(bad("trailing bytes"));
            }
            Ok(Wire::Msg(MixedMessage { data, on_disk }))
        }
        other => Err(bad(&format!("kind byte {other}"))),
    }
}

fn write_frame(stream: &mut TcpStream, wire: &Wire) -> Result<()> {
    let body = encode_wire(wire);
    stream.write_all(&(body.len() as u64).to_le_bytes())?;
    stream.write_all(&body)?;
    Ok(())
}

/// Read one length-prefixed frame body. `Ok(None)` is a clean connection
/// close between frames. `Err` means the stream itself failed or the
/// length prefix can no longer be trusted — no resync is possible. A body
/// that fails to *decode* is not this function's concern: the caller can
/// keep reading, because the length prefix kept the stream aligned.
fn read_body(stream: &mut TcpStream) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 8];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u64::from_le_bytes(len_buf);
    if len > MAX_FRAME as u64 {
        return Err(Error::Storage(format!("oversized TCP frame ({len} bytes)")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Bind one listener per consumer rank and start acceptor/reader threads.
///
/// Returns the bound addresses (to hand to producers, e.g. through a job
/// launcher or a file) and one [`MeshReceiver`] per consumer rank, directly
/// usable with [`crate::Consumer::spawn`]. Each listener accepts exactly
/// `producers` connections; each connection gets a reader thread that
/// decodes frames into the consumer's wire channel.
pub fn listen_consumers(
    consumers: usize,
    producers: usize,
) -> Result<(Vec<SocketAddr>, Vec<MeshReceiver>)> {
    listen_consumers_traced(consumers, producers, &TraceSink::off())
}

/// [`listen_consumers`] with wire-level tracing: every frame decoded off a
/// socket is recorded as a `Recv` span on lane `net/q{rank}` of `sink`
/// (all connections of one consumer share the lane label, so their spans
/// merge into one timeline row).
pub fn listen_consumers_traced(
    consumers: usize,
    producers: usize,
    sink: &TraceSink,
) -> Result<(Vec<SocketAddr>, Vec<MeshReceiver>)> {
    assert!(consumers > 0 && producers > 0);
    let mut addrs = Vec::with_capacity(consumers);
    let mut receivers = Vec::with_capacity(consumers);
    for q in 0..consumers {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?);
        let rank = Rank(q as u32);
        let (tx, rx) = unbounded();
        let sink = sink.clone();
        std::thread::Builder::new()
            .name(format!("zipper-tcp-accept-{q}"))
            .spawn(move || {
                for _ in 0..producers {
                    let stream = match listener.accept() {
                        Ok((stream, _peer)) => stream,
                        Err(e) => {
                            let _ = tx.send(Err(RuntimeError::Transport {
                                rank,
                                detail: format!("listener accept failed: {e}"),
                            }));
                            return;
                        }
                    };
                    let conn_tx = tx.clone();
                    let mut rec = sink.recorder(format!("net/q{q}"));
                    let spawned = std::thread::Builder::new()
                        .name("zipper-tcp-read".into())
                        .spawn(move || {
                            let mut stream = stream;
                            loop {
                                match rec.time(SpanKind::Recv, || read_body(&mut stream)) {
                                    Ok(Some(body)) => match decode_wire(&body) {
                                        Ok(wire) => {
                                            if conn_tx.send(Ok(wire)).is_err() {
                                                return;
                                            }
                                        }
                                        // A corrupt body leaves the
                                        // length-prefixed stream aligned on
                                        // the next frame: report the lost
                                        // message in-band and keep reading,
                                        // instead of silently dying and
                                        // leaving the consumer waiting on
                                        // this producer's EOS forever.
                                        Err(e) => {
                                            let fault = RuntimeError::Transport {
                                                rank,
                                                detail: e.to_string(),
                                            };
                                            if conn_tx.send(Err(fault)).is_err() {
                                                return;
                                            }
                                        }
                                    },
                                    Ok(None) => return,
                                    // The socket failed (or the length
                                    // prefix is untrustworthy): surface the
                                    // failure, then give up on this stream.
                                    Err(e) => {
                                        let _ = conn_tx.send(Err(RuntimeError::Transport {
                                            rank,
                                            detail: e.to_string(),
                                        }));
                                        return;
                                    }
                                }
                            }
                        });
                    if let Err(e) = spawned {
                        let _ = tx.send(Err(RuntimeError::Transport {
                            rank,
                            detail: format!("could not spawn tcp reader: {e}"),
                        }));
                        return;
                    }
                }
            })?;
        receivers.push(MeshReceiver::from_channel(rx));
    }
    Ok((addrs, receivers))
}

/// Producer-side TCP endpoint: one connection per consumer rank.
/// Implements [`WireSender`], so it plugs straight into
/// [`crate::Producer::spawn`].
pub struct TcpSender {
    streams: Vec<Mutex<TcpStream>>,
    telemetry: Telemetry,
}

impl TcpSender {
    /// Connect to every consumer listener with the default retry policy
    /// and a 5-second per-attempt timeout.
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self> {
        Self::connect_with(addrs, &RetryPolicy::default(), Duration::from_secs(5))
    }

    /// Connect to every consumer listener, retrying failed attempts under
    /// `policy` with exponential backoff. `timeout` bounds each connect
    /// attempt *and* every subsequent frame write, so a wedged consumer
    /// surfaces as a typed error instead of hanging the sender thread.
    pub fn connect_with(
        addrs: &[SocketAddr],
        policy: &RetryPolicy,
        timeout: Duration,
    ) -> Result<Self> {
        let mut streams = Vec::with_capacity(addrs.len());
        for (i, a) in addrs.iter().enumerate() {
            let mut attempt = 1u32;
            let s = loop {
                match TcpStream::connect_timeout(a, timeout) {
                    Ok(s) => break s,
                    Err(_) if policy.should_retry(attempt) => {
                        std::thread::sleep(policy.backoff(attempt, i as u64));
                        attempt += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            s.set_nodelay(true)?;
            s.set_write_timeout(Some(timeout))?;
            streams.push(Mutex::new(s));
        }
        Ok(TcpSender {
            streams,
            telemetry: Telemetry::off(),
        })
    }

    /// Record per-frame write-blocked time (`net.tcp_stall_ns`) and wire
    /// traffic counters into `telemetry` — the socket-level analogue of
    /// the fabric's `XmitWait` counter.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl WireSender for TcpSender {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        let mut stream = self
            .streams
            .get(to.idx())
            .ok_or(Error::Disconnected("unknown consumer rank"))?
            .lock();
        if !self.telemetry.is_enabled() {
            return write_frame(&mut stream, &wire);
        }
        let t0 = std::time::Instant::now();
        let bytes = wire.wire_bytes();
        let res = write_frame(&mut stream, &wire);
        // Time inside the frame write is time the OS socket buffer (or the
        // peer) made us wait — the TCP sender's stall.
        self.telemetry.add_time(CounterId::TcpStallNs, t0.elapsed());
        if res.is_ok() {
            self.telemetry.add(CounterId::NetBytes, bytes);
            self.telemetry.add(CounterId::NetMessages, 1);
            self.telemetry.observe(HistogramId::SendBytes, bytes);
        }
        res
    }

    fn consumers(&self) -> usize {
        self.streams.len()
    }

    /// Deliver a scripted corruption over the real socket: a garbage body
    /// under a valid length prefix. The reader keeps the stream aligned
    /// (the length prefix is intact), fails to decode the body, and
    /// reports the loss in-band as a `Transport` fault — the same
    /// consumer-visible outcome the in-process mesh produces, but
    /// exercising the wire codec's corruption path for real.
    fn send_fault(&self, to: Rank, _fault: RuntimeError) -> Result<()> {
        let mut stream = self
            .streams
            .get(to.idx())
            .ok_or(Error::Disconnected("unknown consumer rank"))?
            .lock();
        let garbage: [u8; 4] = [0xDE, 0xAD, 0xBE, 0xEF];
        stream.write_all(&(garbage.len() as u64).to_le_bytes())?;
        stream.write_all(&garbage)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipper_types::block::deterministic_payload;
    use zipper_types::StepId;

    fn sample_block(len: usize) -> Block {
        let id = BlockId::new(Rank(3), StepId(9), 2);
        Block::new(
            BlockHeader::new(id, GlobalPos::new(7, 8, 9), len as u64, 5),
            deterministic_payload(id, len),
        )
    }

    #[test]
    fn wire_codec_round_trips_every_variant() {
        let wires = [
            Wire::Eos(Rank(42), Channel::Net),
            Wire::Eos(Rank(42), Channel::Disk),
            Wire::Msg(MixedMessage::data_only(sample_block(257))),
            Wire::Msg(MixedMessage::disk_only(vec![
                BlockId::new(Rank(1), StepId(2), 3),
                BlockId::new(Rank(4), StepId(5), 6),
            ])),
            Wire::Msg(MixedMessage::mixed(
                sample_block(64),
                vec![BlockId::new(Rank(0), StepId(0), 0)],
            )),
        ];
        for w in wires {
            let body = encode_wire(&w);
            let back = decode_wire(&body).unwrap();
            match (&w, &back) {
                (Wire::Eos(a, ca), Wire::Eos(b, cb)) => {
                    assert_eq!(a, b);
                    assert_eq!(ca, cb);
                }
                (Wire::Msg(a), Wire::Msg(b)) => assert_eq!(a, b),
                _ => panic!("variant changed in transit"),
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(decode_wire(&[]).is_err());
        assert!(decode_wire(&[9]).is_err()); // unknown kind
        assert!(decode_wire(&[1, 0]).is_err()); // truncated eos
                                                // Pre-channel eos body (rank only, no channel byte) is rejected.
        let mut legacy = vec![1u8];
        legacy.extend_from_slice(&3u32.to_le_bytes());
        assert!(decode_wire(&legacy).is_err());
        // Unknown channel byte.
        let mut bad_ch = vec![1u8];
        bad_ch.extend_from_slice(&3u32.to_le_bytes());
        bad_ch.push(7);
        assert!(decode_wire(&bad_ch).is_err());
        // Valid message with trailing garbage.
        let mut body = encode_wire(&Wire::Eos(Rank(1), Channel::Net));
        body[0] = 0; // claim it's a Msg -> structure no longer matches
        assert!(decode_wire(&body).is_err());
    }

    #[test]
    fn hostile_id_count_rejected_without_allocation() {
        // kind=Msg, n_ids = u32::MAX: claims ~32 GiB of IDs in a 5-byte
        // body. Must fail fast instead of pre-allocating.
        let body = [0u8, 0xFF, 0xFF, 0xFF, 0xFF];
        let err = decode_wire(&body).unwrap_err();
        assert!(err.to_string().contains("id count"), "{err}");
    }

    #[test]
    fn hostile_payload_length_rejected() {
        // A data block claiming a u64::MAX payload length: `take` must
        // not overflow its cursor arithmetic.
        let mut body = vec![0u8]; // Msg
        body.extend_from_slice(&0u32.to_le_bytes()); // no ids
        body.push(1); // has_data
        body.extend_from_slice(&[0u8; 8 * 4 + 4]); // id, pos xyz, blocks_in_step
        body.extend_from_slice(&u64::MAX.to_le_bytes()); // payload len
        assert!(decode_wire(&body).is_err());
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let (addrs, receivers) = listen_consumers(2, 1).unwrap();
        let sender = TcpSender::connect(&addrs).unwrap();
        assert_eq!(WireSender::consumers(&sender), 2);
        sender
            .send(
                Rank(0),
                Wire::Msg(MixedMessage::data_only(sample_block(1000))),
            )
            .unwrap();
        sender
            .send(Rank(1), Wire::Eos(Rank(7), Channel::Disk))
            .unwrap();
        match receivers[0].recv().unwrap() {
            Wire::Msg(m) => {
                let b = m.data.unwrap();
                assert_eq!(b.header.len, 1000);
                assert_eq!(b.payload, deterministic_payload(b.id(), 1000));
            }
            w => panic!("unexpected {w:?}"),
        }
        match receivers[1].recv().unwrap() {
            Wire::Eos(r, ch) => {
                assert_eq!(r, Rank(7));
                assert_eq!(ch, Channel::Disk);
            }
            w => panic!("unexpected {w:?}"),
        }
    }

    #[test]
    fn corrupt_frame_is_reported_in_band_and_stream_survives() {
        let (addrs, receivers) = listen_consumers(1, 1).unwrap();
        let mut raw = TcpStream::connect(addrs[0]).unwrap();
        // Garbage body under a valid length prefix: framing stays aligned.
        let garbage = [9u8, 1, 2, 3];
        raw.write_all(&(garbage.len() as u64).to_le_bytes())
            .unwrap();
        raw.write_all(&garbage).unwrap();
        // A valid frame right behind it must still get through.
        let body = encode_wire(&Wire::Eos(Rank(5), Channel::Net));
        raw.write_all(&(body.len() as u64).to_le_bytes()).unwrap();
        raw.write_all(&body).unwrap();
        let err = receivers[0].recv().unwrap_err();
        assert!(
            matches!(err, Error::Runtime(RuntimeError::Transport { .. })),
            "{err:?}"
        );
        match receivers[0].recv().unwrap() {
            Wire::Eos(r, _) => assert_eq!(r, Rank(5)),
            w => panic!("unexpected {w:?}"),
        }
    }

    #[test]
    fn send_fault_surfaces_in_band_and_stream_survives() {
        let (addrs, receivers) = listen_consumers(1, 1).unwrap();
        let sender = TcpSender::connect(&addrs).unwrap();
        sender
            .send_fault(
                Rank(0),
                RuntimeError::Transport {
                    rank: Rank(0),
                    detail: "scripted".into(),
                },
            )
            .unwrap();
        sender
            .send(Rank(0), Wire::Eos(Rank(2), Channel::Net))
            .unwrap();
        let err = receivers[0].recv().unwrap_err();
        assert!(
            matches!(err, Error::Runtime(RuntimeError::Transport { .. })),
            "{err:?}"
        );
        match receivers[0].recv().unwrap() {
            Wire::Eos(r, ch) => {
                assert_eq!(r, Rank(2));
                assert_eq!(ch, Channel::Net);
            }
            w => panic!("unexpected {w:?}"),
        }
    }

    #[test]
    fn connect_to_dead_consumer_errors_after_bounded_retry() {
        // Bind then drop so the port is closed when we dial it.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        let policy = RetryPolicy::new(2, Duration::from_millis(1), Duration::from_millis(2));
        let r = TcpSender::connect_with(&[addr], &policy, Duration::from_millis(200));
        assert!(r.is_err(), "connect to a dead listener must fail, not hang");
    }
}
