//! Per-rank runtime metrics — the quantities Figs. 12–14 plot: stall time,
//! transfer busy time, stolen-block counts, etc.
//!
//! Time-based quantities are *derived views over the span log*: each rank's
//! runtime lanes record spans through [`zipper_trace::LaneRecorder`]s, and
//! `join()` folds the per-lane [`KindBreakdown`]s into these structs. Only
//! discrete event counts (blocks, bytes) and error reports are maintained
//! directly — there is no second, hand-maintained time bookkeeping to
//! drift out of sync with the trace.

use std::time::Duration;
use zipper_trace::{KindBreakdown, SpanKind};
use zipper_types::RuntimeError;

fn as_duration(t: zipper_types::SimTime) -> Duration {
    Duration::from_nanos(t.as_nanos())
}

/// Metrics of one producer rank's runtime module.
#[derive(Clone, Debug, Default)]
pub struct ProducerMetrics {
    /// Blocks handed to `Zipper::write`.
    pub blocks_written: u64,
    /// Blocks shipped over the message channel by the sender thread.
    pub blocks_sent: u64,
    /// Blocks stolen to the PFS by the writer thread.
    pub blocks_stolen: u64,
    /// Payload bytes over the message channel.
    pub bytes_sent: u64,
    /// Payload bytes through the file channel.
    pub bytes_stolen: u64,
    /// Span-time breakdown of the application lane (compute + stall).
    pub app: KindBreakdown,
    /// Span-time breakdown of the sender thread's lane (send + idle).
    pub sender: KindBreakdown,
    /// Span-time breakdown of the writer (steal) thread's lane
    /// (fs-write + idle).
    pub writer: KindBreakdown,
    /// Runtime failure reports (e.g. a PFS failure that retired the
    /// writer thread).
    pub errors: Vec<RuntimeError>,
}

impl ProducerMetrics {
    /// Time the computation thread was blocked in `write` (producer
    /// buffer full) — the paper's simulation stall. Derived from the
    /// application lane's `Stall` spans.
    pub fn stall(&self) -> Duration {
        as_duration(self.app.get(SpanKind::Stall))
    }

    /// Application compute time between writes (gap spans on the app lane).
    pub fn compute(&self) -> Duration {
        as_duration(self.app.get(SpanKind::Compute))
    }

    /// Sender-thread busy time (sending on the message channel).
    pub fn send_busy(&self) -> Duration {
        as_duration(self.sender.get(SpanKind::Send))
    }

    /// Sender-thread idle time (waiting for data).
    pub fn send_idle(&self) -> Duration {
        as_duration(self.sender.get(SpanKind::Idle))
    }

    /// Writer-thread busy time (storing stolen blocks to the PFS).
    pub fn fs_busy(&self) -> Duration {
        as_duration(self.writer.get(SpanKind::FsWrite))
    }

    /// Writer-thread idle time (queue below the high-water mark).
    pub fn fs_idle(&self) -> Duration {
        as_duration(self.writer.get(SpanKind::Idle))
    }

    /// Fraction of written blocks that took the file path.
    pub fn steal_fraction(&self) -> f64 {
        if self.blocks_written == 0 {
            0.0
        } else {
            self.blocks_stolen as f64 / self.blocks_written as f64
        }
    }

    /// Fold another rank's metrics into this aggregate.
    pub fn merge(&mut self, other: &ProducerMetrics) {
        self.blocks_written += other.blocks_written;
        self.blocks_sent += other.blocks_sent;
        self.blocks_stolen += other.blocks_stolen;
        self.bytes_sent += other.bytes_sent;
        self.bytes_stolen += other.bytes_stolen;
        self.app.merge(&other.app);
        self.sender.merge(&other.sender);
        self.writer.merge(&other.writer);
        self.errors.extend(other.errors.iter().cloned());
    }
}

/// Metrics of one consumer rank's runtime module.
#[derive(Clone, Debug, Default)]
pub struct ConsumerMetrics {
    /// Blocks that arrived over the message channel.
    pub blocks_net: u64,
    /// Blocks fetched from the PFS by the reader thread.
    pub blocks_disk: u64,
    /// Blocks handed to the application through `Zipper::read`.
    pub blocks_delivered: u64,
    /// Blocks persisted by the output thread (Preserve mode only).
    pub blocks_stored: u64,
    /// Span-time breakdown of the receiver thread's lane (recv + stall).
    pub recv: KindBreakdown,
    /// Span-time breakdown of the reader thread's lane (fs-read).
    pub disk: KindBreakdown,
    /// Span-time breakdown of the application (deliver) lane
    /// (read-wait + analysis).
    pub app: KindBreakdown,
    /// Failure reports from runtime threads (storage failures etc.).
    pub errors: Vec<RuntimeError>,
}

impl ConsumerMetrics {
    /// Total blocks that entered this consumer.
    pub fn blocks_in(&self) -> u64 {
        self.blocks_net + self.blocks_disk
    }

    /// Time `Zipper::read` spent blocked waiting for data — derived from
    /// the application lane's `ReadWait` spans.
    pub fn read_wait(&self) -> Duration {
        as_duration(self.app.get(SpanKind::ReadWait))
    }

    /// Receiver-thread time spent in `recv` on the message channel.
    pub fn recv_busy(&self) -> Duration {
        as_duration(self.recv.get(SpanKind::Recv))
    }

    /// Reader-thread time spent fetching blocks from the PFS.
    pub fn disk_busy(&self) -> Duration {
        as_duration(self.disk.get(SpanKind::FsRead))
    }

    pub fn merge(&mut self, other: &ConsumerMetrics) {
        self.blocks_net += other.blocks_net;
        self.blocks_disk += other.blocks_disk;
        self.blocks_delivered += other.blocks_delivered;
        self.blocks_stored += other.blocks_stored;
        self.recv.merge(&other.recv);
        self.disk.merge(&other.disk);
        self.app.merge(&other.app);
        self.errors.extend(other.errors.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipper_types::{Rank, SimTime};

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn steal_fraction_handles_zero() {
        let m = ProducerMetrics::default();
        assert_eq!(m.steal_fraction(), 0.0);
        let m = ProducerMetrics {
            blocks_written: 10,
            blocks_stolen: 4,
            ..Default::default()
        };
        assert!((m.steal_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn durations_are_views_over_breakdowns() {
        let mut m = ProducerMetrics::default();
        m.app.add(SpanKind::Stall, ms(10));
        m.app.add(SpanKind::Compute, ms(30));
        m.sender.add(SpanKind::Send, ms(7));
        m.sender.add(SpanKind::Idle, ms(3));
        m.writer.add(SpanKind::FsWrite, ms(2));
        assert_eq!(m.stall(), Duration::from_millis(10));
        assert_eq!(m.compute(), Duration::from_millis(30));
        assert_eq!(m.send_busy(), Duration::from_millis(7));
        assert_eq!(m.send_idle(), Duration::from_millis(3));
        assert_eq!(m.fs_busy(), Duration::from_millis(2));
        assert_eq!(m.fs_idle(), Duration::ZERO);

        let mut c = ConsumerMetrics::default();
        c.app.add(SpanKind::ReadWait, ms(4));
        c.recv.add(SpanKind::Recv, ms(6));
        c.disk.add(SpanKind::FsRead, ms(1));
        assert_eq!(c.read_wait(), Duration::from_millis(4));
        assert_eq!(c.recv_busy(), Duration::from_millis(6));
        assert_eq!(c.disk_busy(), Duration::from_millis(1));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ProducerMetrics {
            blocks_written: 5,
            ..Default::default()
        };
        a.app.add(SpanKind::Stall, ms(10));
        let mut b = ProducerMetrics {
            blocks_written: 7,
            ..Default::default()
        };
        b.app.add(SpanKind::Stall, ms(5));
        a.merge(&b);
        assert_eq!(a.blocks_written, 12);
        assert_eq!(a.stall(), Duration::from_millis(15));

        let mut c = ConsumerMetrics {
            blocks_net: 1,
            errors: vec![RuntimeError::BlockFetchFailed {
                rank: Rank(0),
                detail: "x".into(),
            }],
            ..Default::default()
        };
        let d = ConsumerMetrics {
            blocks_disk: 2,
            errors: vec![RuntimeError::BlockFetchFailed {
                rank: Rank(0),
                detail: "y".into(),
            }],
            ..Default::default()
        };
        c.merge(&d);
        assert_eq!(c.blocks_in(), 3);
        assert_eq!(c.errors.len(), 2);
    }
}
