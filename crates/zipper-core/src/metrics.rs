//! Per-rank runtime metrics — the quantities Figs. 12–14 plot: stall time,
//! transfer busy time, stolen-block counts, etc.

use std::time::Duration;

/// Metrics of one producer rank's runtime module.
#[derive(Clone, Debug, Default)]
pub struct ProducerMetrics {
    /// Blocks handed to `Zipper::write`.
    pub blocks_written: u64,
    /// Blocks shipped over the message channel by the sender thread.
    pub blocks_sent: u64,
    /// Blocks stolen to the PFS by the writer thread.
    pub blocks_stolen: u64,
    /// Payload bytes over the message channel.
    pub bytes_sent: u64,
    /// Payload bytes through the file channel.
    pub bytes_stolen: u64,
    /// Time the computation thread was blocked in `write` (producer
    /// buffer full) — the paper's simulation stall.
    pub stall: Duration,
    /// Sender-thread busy time (sending) and idle time (waiting for data).
    pub send_busy: Duration,
    pub send_idle: Duration,
    /// Writer-thread busy time (storing) and idle time (below threshold).
    pub fs_busy: Duration,
    pub fs_idle: Duration,
    /// Runtime errors (e.g. a PFS failure that retired the writer thread).
    pub errors: Vec<String>,
}

impl ProducerMetrics {
    /// Fraction of written blocks that took the file path.
    pub fn steal_fraction(&self) -> f64 {
        if self.blocks_written == 0 {
            0.0
        } else {
            self.blocks_stolen as f64 / self.blocks_written as f64
        }
    }

    /// Fold another rank's metrics into this aggregate.
    pub fn merge(&mut self, other: &ProducerMetrics) {
        self.blocks_written += other.blocks_written;
        self.blocks_sent += other.blocks_sent;
        self.blocks_stolen += other.blocks_stolen;
        self.bytes_sent += other.bytes_sent;
        self.bytes_stolen += other.bytes_stolen;
        self.stall += other.stall;
        self.send_busy += other.send_busy;
        self.send_idle += other.send_idle;
        self.fs_busy += other.fs_busy;
        self.fs_idle += other.fs_idle;
        self.errors.extend(other.errors.iter().cloned());
    }
}

/// Metrics of one consumer rank's runtime module.
#[derive(Clone, Debug, Default)]
pub struct ConsumerMetrics {
    /// Blocks that arrived over the message channel.
    pub blocks_net: u64,
    /// Blocks fetched from the PFS by the reader thread.
    pub blocks_disk: u64,
    /// Blocks handed to the application through `Zipper::read`.
    pub blocks_delivered: u64,
    /// Blocks persisted by the output thread (Preserve mode only).
    pub blocks_stored: u64,
    /// Time `Zipper::read` spent blocked waiting for data.
    pub read_wait: Duration,
    /// Errors encountered by runtime threads (storage failures etc.).
    pub errors: Vec<String>,
}

impl ConsumerMetrics {
    /// Total blocks that entered this consumer.
    pub fn blocks_in(&self) -> u64 {
        self.blocks_net + self.blocks_disk
    }

    pub fn merge(&mut self, other: &ConsumerMetrics) {
        self.blocks_net += other.blocks_net;
        self.blocks_disk += other.blocks_disk;
        self.blocks_delivered += other.blocks_delivered;
        self.blocks_stored += other.blocks_stored;
        self.read_wait += other.read_wait;
        self.errors.extend(other.errors.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_fraction_handles_zero() {
        let m = ProducerMetrics::default();
        assert_eq!(m.steal_fraction(), 0.0);
        let m = ProducerMetrics {
            blocks_written: 10,
            blocks_stolen: 4,
            ..Default::default()
        };
        assert!((m.steal_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ProducerMetrics {
            blocks_written: 5,
            stall: Duration::from_millis(10),
            ..Default::default()
        };
        let b = ProducerMetrics {
            blocks_written: 7,
            stall: Duration::from_millis(5),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks_written, 12);
        assert_eq!(a.stall, Duration::from_millis(15));

        let mut c = ConsumerMetrics {
            blocks_net: 1,
            errors: vec!["x".into()],
            ..Default::default()
        };
        let d = ConsumerMetrics {
            blocks_disk: 2,
            errors: vec!["y".into()],
            ..Default::default()
        };
        c.merge(&d);
        assert_eq!(c.blocks_in(), 3);
        assert_eq!(c.errors.len(), 2);
    }
}
