//! The producer runtime module (Fig. 8): producer buffer + sender thread +
//! work-stealing writer thread, behind the `Zipper.write()` API.
//!
//! Every thread of the module records spans to the run's
//! [`TraceSink`]: the application lane captures compute (the gaps
//! between `write` calls, step-marked) and stall (blocked on a full
//! buffer), the sender lane captures send/idle, and the writer lane
//! captures fs-write/idle. The per-rank [`ProducerMetrics`] time fields
//! are views over these lanes, derived at [`Producer::join`].

// Threaded substrate: producer compute/stall timing against the real clock is
// this module's job — the DES twin replays the same policy in virtual time.
#![allow(clippy::disallowed_methods)]
use crate::buffer::BlockQueue;
use crate::metrics::ProducerMetrics;
use crate::transport::{Wire, WireSender};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use zipper_policy::{Channel, ProducerPolicy, RetireReason};
use zipper_trace::{
    block_token, eos_token, CausalSink, EdgeKind, GaugeId, HistogramId, LaneRecorder, MetricShard,
    SpanKind, TraceSink,
};
use zipper_types::{
    panic_detail, Block, BlockId, Error, GlobalPos, MixedMessage, Rank, RuntimeError, SenderGate,
    SimTime, StepId, ZipperTuning,
};

/// Pending on-disk block IDs, bucketed by destination consumer. The writer
/// thread fills these; the sender thread piggybacks them onto its next
/// message to that consumer (the paper's "mixed messages").
type PendingIds = Arc<Mutex<Vec<Vec<BlockId>>>>;

/// One producer rank's decision kernel, shared by its sender and writer
/// threads. Both consult it through the buffer's atomic take-and-route
/// path ([`BlockQueue::pop_then`] / [`BlockQueue::steal_then`]), so
/// routing order equals take order. Lock order is queue → policy.
pub type SharedProducerPolicy = Arc<Mutex<ProducerPolicy>>;

/// Lane label of producer `rank`'s application (compute) lane.
pub fn app_lane(rank: Rank) -> String {
    format!("sim/p{}/app", rank.0)
}

/// Lane label of producer `rank`'s sender thread.
pub fn sender_lane(rank: Rank) -> String {
    format!("sim/p{}/send", rank.0)
}

/// Lane label of producer `rank`'s work-stealing writer thread.
pub fn writer_lane(rank: Rank) -> String {
    format!("sim/p{}/fs", rank.0)
}

/// Causal-queue label of producer `rank`'s buffer (join key only — never
/// part of a path signature, so it need not match the DES's name for the
/// same buffer).
fn producer_queue(rank: Rank) -> String {
    format!("q/sim/p{}", rank.0)
}

/// Channel code for EOS join tokens (shared with the consumer side).
pub(crate) fn chan_code(ch: Channel) -> u8 {
    match ch {
        Channel::Net => 0,
        Channel::Disk => 1,
    }
}

/// Causal token of one block's cross-entity edges.
pub(crate) fn causal_token(id: BlockId) -> u64 {
    block_token(id.src.0, id.step.0, id.idx)
}

/// Shutdown handshake between the writer and sender threads: at
/// end-of-stream the sender must not flush the pending-ID buckets (and
/// must not announce EOS) until the writer has finished its in-flight
/// store — otherwise the last stolen block's ID would never reach the
/// consumer.
#[derive(Default)]
struct WriterDone {
    done: Mutex<bool>,
    cv: parking_lot::Condvar,
}

impl WriterDone {
    fn signal(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut g = self.done.lock();
        while !*g {
            self.cv.wait(&mut g);
        }
    }
}

/// Record a wait that ended "now" and lasted `waited` as a span of `kind`.
pub(crate) fn record_wait(rec: &mut LaneRecorder, kind: SpanKind, waited: std::time::Duration) {
    if rec.enabled() && !waited.is_zero() {
        let t1 = rec.now();
        let t0 = t1.saturating_sub(SimTime::from_nanos(waited.as_nanos() as u64));
        rec.record(kind, t0, t1);
    }
}

/// Application-facing writer handle: the paper's
/// `Zipper.write(block_id, data, block_size)`.
pub struct ZipperWriter {
    rank: Rank,
    queue: Arc<BlockQueue>,
    consumers: usize,
    block_size: usize,
    metrics: Arc<Mutex<ProducerMetrics>>,
    /// The application lane. Guarded by a (uncontended) mutex only so the
    /// handle stays usable behind `&self`, matching the paper's API shape.
    recorder: Mutex<LaneRecorder>,
    /// Edge recording for queue handoffs (push side of the FIFO join).
    causal: CausalSink,
    queue_label: String,
    app_label: String,
    /// Set by `finish`; when a writer is dropped without finishing (the
    /// application panicked or bailed early), the `Drop` guard still closes
    /// the queue so the sender drains, announces EOS, and the consumers can
    /// shut down instead of hanging.
    finished: bool,
}

impl ZipperWriter {
    /// Producer rank this writer belongs to.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Hand one pre-built fine-grain block to the runtime. Blocks while the
    /// producer buffer is full — that time is recorded as simulation stall.
    ///
    /// The time *between* runtime calls is recorded as a step-marked
    /// compute span: from the trace's point of view, whatever the
    /// application did since it last handed over a block is simulation
    /// compute.
    pub fn write(&self, block: Block) {
        let step = block.id().step.0;
        let mut rec = self.recorder.lock();
        rec.close_gap(SpanKind::Compute, step);
        match self.queue.push(block) {
            Ok(stall) => {
                record_wait(&mut rec, SpanKind::Stall, stall);
                rec.mark();
                drop(rec);
                self.causal.queue_push(&self.queue_label, &self.app_label);
                self.metrics.lock().blocks_written += 1;
            }
            Err(_) => {
                // Shutdown race: the queue closed under us. The block is
                // dropped and the condition recorded; the application keeps
                // running.
                rec.mark();
                drop(rec);
                self.metrics.lock().errors.push(RuntimeError::QueueClosed {
                    rank: self.rank,
                    context: "producer write",
                });
            }
        }
    }

    /// Split one step's output slab into fine-grain blocks of the
    /// configured block size and write them all — the paper's fine-grain
    /// decomposition ("Zipper divides the contiguous 20 MB data into many
    /// small blocks of size 1.2 MB", §6.3.2).
    ///
    /// Returns the number of blocks written.
    pub fn write_slab(&self, step: StepId, base_pos: GlobalPos, slab: Bytes) -> u32 {
        assert!(!slab.is_empty(), "cannot write an empty slab");
        let n = slab.len().div_ceil(self.block_size) as u32;
        for i in 0..n {
            let lo = i as usize * self.block_size;
            let hi = (lo + self.block_size).min(slab.len());
            let pos = GlobalPos::new(base_pos.x + lo as u64, base_pos.y, base_pos.z);
            let block = Block::from_payload(self.rank, step, i, n, pos, slab.slice(lo..hi));
            self.write(block);
        }
        n
    }

    /// Number of consumer ranks this writer can route to.
    pub fn consumers(&self) -> usize {
        self.consumers
    }

    /// Finish the stream: close the producer buffer so the sender and
    /// writer threads drain and exit, and flush this lane's spans into the
    /// trace. Call exactly once, after the last `write`.
    pub fn finish(mut self) {
        self.finished = true;
        self.queue.close();
        // Dropping `self` flushes the lane recorder.
    }
}

impl Drop for ZipperWriter {
    fn drop(&mut self) {
        if !self.finished {
            // The application never called `finish` — it panicked or
            // returned early. Close the queue anyway so the runtime threads
            // drain, EOS reaches the consumers, and nothing hangs.
            self.queue.close();
        }
    }
}

/// One producer rank's runtime: owns the sender/writer threads.
pub struct Producer {
    rank: Rank,
    queue: Arc<BlockQueue>,
    consumers: usize,
    metrics: Arc<Mutex<ProducerMetrics>>,
    sink: TraceSink,
    sender_thread: Option<JoinHandle<()>>,
    writer_thread: Option<JoinHandle<()>>,
    writer_taken: bool,
}

impl Producer {
    /// Spawn the runtime module for producer `rank` with a private
    /// totals-mode trace sink (stand-alone use; workflow runs share one
    /// sink via [`Producer::spawn_traced`]).
    pub fn spawn(
        rank: Rank,
        tuning: ZipperTuning,
        mesh: impl WireSender + 'static,
        storage: Arc<dyn zipper_pfs::Storage>,
    ) -> Producer {
        Self::spawn_traced(rank, tuning, mesh, storage, TraceSink::default())
    }

    /// Spawn the runtime module for producer `rank`.
    ///
    /// * `tuning` — buffer capacity, high-water mark, routing, dual-channel
    ///   switch.
    /// * `mesh` — the message channel toward the consumers.
    /// * `storage` — the PFS used by the work-stealing writer thread
    ///   (ignored when `tuning.concurrent_transfer` is off).
    /// * `sink` — the run's trace sink; all lanes of all ranks of one run
    ///   should share one sink so their spans share a time axis.
    pub fn spawn_traced(
        rank: Rank,
        tuning: ZipperTuning,
        mesh: impl WireSender + 'static,
        storage: Arc<dyn zipper_pfs::Storage>,
        sink: TraceSink,
    ) -> Producer {
        let policy = Arc::new(Mutex::new(ProducerPolicy::from_tuning(
            rank,
            mesh.consumers(),
            &tuning,
        )));
        Self::spawn_with_policy(rank, tuning, mesh, storage, sink, policy)
    }

    /// Like [`Producer::spawn_traced`], but driving a caller-supplied
    /// policy kernel — the hook the conformance harness uses to record a
    /// [`zipper_policy::DecisionTrace`] of every choice this rank makes
    /// (pass a [`ProducerPolicy::recorded`] policy and keep a clone of the
    /// `Arc`).
    pub fn spawn_with_policy(
        rank: Rank,
        tuning: ZipperTuning,
        mesh: impl WireSender + 'static,
        storage: Arc<dyn zipper_pfs::Storage>,
        sink: TraceSink,
        policy: SharedProducerPolicy,
    ) -> Producer {
        Self::spawn_with_policy_detached(rank, tuning, mesh, storage, sink, policy, false)
    }

    /// Like [`Producer::spawn_with_policy`], but optionally detaching the
    /// sender thread from the data path — the chaos engine's
    /// `ChaosFault::DetachSender`. A detached sender takes no blocks (with
    /// the high-water mark at zero every block drains through the
    /// work-stealing writer in production order, which makes the steal
    /// schedule deterministic across substrates); it still waits for the
    /// writer to retire, flushes the pending on-disk IDs, and announces
    /// EOS. Requires `tuning.concurrent_transfer` — without a writer
    /// thread a detached producer would ship nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_policy_detached(
        rank: Rank,
        tuning: ZipperTuning,
        mesh: impl WireSender + 'static,
        storage: Arc<dyn zipper_pfs::Storage>,
        sink: TraceSink,
        policy: SharedProducerPolicy,
        detach_sender: bool,
    ) -> Producer {
        Self::spawn_with_policy_gated(
            rank,
            tuning,
            mesh,
            storage,
            sink,
            policy,
            detach_sender,
            None,
        )
    }

    /// Like [`Producer::spawn_with_policy_detached`], plus an optional
    /// [`SenderGate`] — the producer-side half of a
    /// [`zipper_types::BackpressureScript`]. The gate itself is driven by a
    /// `GatedSender` transport wrapper *outside* this module (it counts the
    /// rank's data wires and stalls at scripted ordinals); this spawn
    /// variant wires up the writer side: while a steal-credit window is
    /// armed the writer steals every buffered block (bypassing the
    /// high-water mark), reports each steal to the gate, and fail-opens the
    /// gate when it retires so an unmet window can never wedge the sender.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_policy_gated(
        rank: Rank,
        tuning: ZipperTuning,
        mesh: impl WireSender + 'static,
        storage: Arc<dyn zipper_pfs::Storage>,
        sink: TraceSink,
        policy: SharedProducerPolicy,
        detach_sender: bool,
        gate: Option<Arc<SenderGate>>,
    ) -> Producer {
        tuning.validate().expect("invalid tuning");
        assert!(
            !detach_sender || tuning.concurrent_transfer,
            "a detached sender needs the writer thread (concurrent_transfer)"
        );
        let consumers = mesh.consumers();
        {
            let p = policy.lock();
            assert_eq!(p.consumers(), consumers, "policy/mesh consumer mismatch");
            assert_eq!(p.rank(), rank, "policy built for a different rank");
        }
        let queue = Arc::new(
            BlockQueue::new(tuning.producer_slots)
                .with_telemetry(sink.telemetry().clone(), GaugeId::ProducerQueueDepth),
        );
        let metrics = Arc::new(Mutex::new(ProducerMetrics::default()));
        let pending: PendingIds = Arc::new(Mutex::new(vec![Vec::new(); consumers]));
        let writer_done = Arc::new(WriterDone::default());

        if let Some(g) = &gate {
            // Arming a steal window must wake a writer already parked on an
            // empty/below-threshold buffer so it re-reads `steal_phase`.
            let wake_queue = queue.clone();
            g.set_waker(move || wake_queue.nudge());
        }

        let writer_thread = if tuning.concurrent_transfer {
            let wq = queue.clone();
            let wpending = pending.clone();
            let wmetrics = metrics.clone();
            let wpolicy = policy.clone();
            let wgate = gate.clone();
            let done = writer_done.clone();
            let rec = sink.recorder(writer_lane(rank));
            let shard = sink.telemetry().shard();
            let wcausal = sink.causal().clone();
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-writer-{rank}"))
                .spawn(move || {
                    writer_loop(
                        rank, wq, storage, wpending, wmetrics, wpolicy, wgate, rec, shard, wcausal,
                    );
                    done.signal();
                });
            match spawned {
                Ok(h) => Some(h),
                Err(e) => {
                    // Degrade to message-passing-only instead of aborting:
                    // the sender must not wait for a writer that never ran.
                    writer_done.signal();
                    if let Some(g) = &gate {
                        g.retire_writer();
                    }
                    policy.lock().writer_retired(RetireReason::Fault);
                    metrics.lock().errors.push(RuntimeError::WriterRetired {
                        rank,
                        detail: format!("could not spawn writer thread: {e}"),
                    });
                    None
                }
            }
        } else {
            writer_done.signal();
            // No writer exists to satisfy steal-credit windows: fail the
            // gate open so scripted stalls degrade to no-ops.
            if let Some(g) = &gate {
                g.retire_writer();
            }
            None
        };

        let sender_thread = {
            let sq = queue.clone();
            let smetrics = metrics.clone();
            let spolicy = policy.clone();
            let sgate = gate.clone();
            let rec = sink.recorder(sender_lane(rank));
            let scausal = sink.causal().clone();
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-sender-{rank}"))
                .spawn(move || {
                    sender_loop(
                        rank,
                        sq,
                        mesh,
                        pending,
                        smetrics,
                        spolicy,
                        writer_done,
                        sgate,
                        rec,
                        scausal,
                        detach_sender,
                    )
                });
            match spawned {
                Ok(h) => Some(h),
                Err(e) => {
                    // Without a sender nothing can be shipped; close the
                    // queue so writes fail soft instead of filling forever,
                    // and record why. The consumers' EOS watchdog covers
                    // the missing end-of-stream markers. No wire will ever
                    // pass, so scripted windows can never arm — cancel
                    // them to release a writer parked between windows.
                    queue.close();
                    if let Some(g) = &gate {
                        g.close_windows();
                    }
                    metrics
                        .lock()
                        .errors
                        .push(RuntimeError::ChannelDisconnected {
                            rank,
                            context: "sender thread could not be spawned",
                        });
                    let _ = e;
                    None
                }
            }
        };

        Producer {
            rank,
            queue,
            consumers,
            metrics,
            sink,
            sender_thread,
            writer_thread,
            writer_taken: false,
        }
    }

    /// The application-facing writer handle (take once).
    pub fn writer(&mut self, block_size: usize) -> ZipperWriter {
        assert!(!self.writer_taken, "writer handle already taken");
        assert!(block_size > 0, "block size must be positive");
        self.writer_taken = true;
        let mut recorder = self.sink.recorder(app_lane(self.rank));
        // Arm the compute-gap marker: time from here to the first write is
        // the first step's compute.
        recorder.mark();
        ZipperWriter {
            rank: self.rank,
            queue: self.queue.clone(),
            consumers: self.consumers,
            block_size,
            metrics: self.metrics.clone(),
            recorder: Mutex::new(recorder),
            causal: self.sink.causal().clone(),
            queue_label: producer_queue(self.rank),
            app_label: app_lane(self.rank),
            finished: false,
        }
    }

    /// Join the runtime threads and return this rank's metrics, with the
    /// time fields derived from the rank's trace lanes. The
    /// [`ZipperWriter`] must have been finished (or dropped — its guard
    /// closes the queue) first, otherwise the threads never exit and this
    /// blocks forever.
    ///
    /// Never panics: a runtime thread that panicked is folded into
    /// `metrics.errors` as an [`RuntimeError::AppPanicked`] report.
    pub fn join(mut self) -> ProducerMetrics {
        for (h, role) in [
            (self.sender_thread.take(), "producer sender thread"),
            (self.writer_thread.take(), "producer writer thread"),
        ] {
            if let Some(h) = h {
                if let Err(payload) = h.join() {
                    self.metrics.lock().errors.push(RuntimeError::AppPanicked {
                        rank: self.rank,
                        role,
                        detail: panic_detail(payload.as_ref()),
                    });
                }
            }
        }
        let mut m = self.metrics.lock().clone();
        m.app = self.sink.lane_totals(&app_lane(self.rank));
        m.sender = self.sink.lane_totals(&sender_lane(self.rank));
        m.writer = self.sink.lane_totals(&writer_lane(self.rank));
        m
    }
}

/// Map an operation-level send error to the runtime fault it represents.
fn wire_fault(rank: Rank, e: Error) -> RuntimeError {
    match e {
        Error::Disconnected(context) => RuntimeError::ChannelDisconnected { rank, context },
        Error::Runtime(re) => re,
        other => RuntimeError::Transport {
            rank,
            detail: other.to_string(),
        },
    }
}

/// Sender thread (Fig. 8): drain the producer buffer over the message
/// channel, piggybacking any on-disk block IDs destined for the same
/// consumer; at end-of-stream flush leftover IDs and announce EOS to the
/// targets the policy kernel names.
///
/// Every routing decision comes from the shared [`ProducerPolicy`],
/// consulted atomically with the take ([`BlockQueue::pop_then`]) so the
/// sender and writer see one rotation in take order.
///
/// Fail-soft: a consumer whose channel fails is marked dead and recorded
/// once; blocks routed to it are dropped while the rest of the mesh keeps
/// flowing, and the thread itself never panics or aborts the run.
///
/// A `detached` sender skips the drain loop entirely — the writer carries
/// every block — but still performs the end-of-stream duties below it.
#[allow(clippy::too_many_arguments)]
fn sender_loop(
    rank: Rank,
    queue: Arc<BlockQueue>,
    mesh: impl WireSender,
    pending: PendingIds,
    metrics: Arc<Mutex<ProducerMetrics>>,
    policy: SharedProducerPolicy,
    writer_done: Arc<WriterDone>,
    gate: Option<Arc<SenderGate>>,
    mut rec: LaneRecorder,
    causal: CausalSink,
    detached: bool,
) {
    let slane = sender_lane(rank);
    let qlabel = producer_queue(rank);
    let mut dead = vec![false; policy.lock().consumers()];
    if !detached {
        loop {
            let (taken, idle) = queue.pop_then(|b| policy.lock().route_net(b.id()));
            record_wait(&mut rec, SpanKind::Idle, idle);
            let Some((block, dest)) = taken else { break };
            causal.queue_pop(&qlabel, &slane);
            if dead[dest.idx()] {
                continue; // destination already failed; drop, error recorded
            }
            let on_disk = std::mem::take(&mut pending.lock()[dest.idx()]);
            let bytes = block.header.len;
            let token = causal_token(block.id());
            let msg = MixedMessage {
                data: Some(block),
                on_disk,
            };
            match rec.time(SpanKind::Send, || mesh.send(dest, Wire::Msg(msg))) {
                Ok(()) => {
                    // The edge's source is the moment the wire cleared this
                    // sender (post gate hold / throttle); the receiver's
                    // `end` half completes it.
                    causal.begin(EdgeKind::Wire, token, &slane);
                    let mut m = metrics.lock();
                    m.blocks_sent += 1;
                    m.bytes_sent += bytes;
                }
                Err(e) => {
                    dead[dest.idx()] = true;
                    metrics.lock().errors.push(wire_fault(rank, e));
                }
            }
        }
    }

    // The queue is drained (or this sender is detached and never passes
    // wires): windows at higher ordinals can never arm, so cancel them to
    // release a writer parked between windows.
    if let Some(g) = &gate {
        g.close_windows();
    }

    // End of the *message* channel: the buffer is drained, so no data wire
    // can follow — the Net-channel EOS ships now, without waiting for the
    // writer. Per-connection FIFO ordering keeps it behind every data
    // message. (Previously one combined EOS covered both channels after
    // the writer retired; splitting them lets a chaos plan drop one
    // channel's mark without silencing the other — the DES already sends
    // per-channel marks.)
    let report_eos = |e: Error| {
        let mut m = metrics.lock();
        match e {
            Error::Aggregate(errs) => {
                m.errors
                    .extend(errs.into_iter().map(|e| wire_fault(rank, e)));
            }
            e => m.errors.push(wire_fault(rank, e)),
        }
    };
    let net_targets = policy.lock().announce_eos(Channel::Net);
    if let Err(e) = mesh.send_eos(rank, Channel::Net, &net_targets) {
        report_eos(e);
    }
    for &q in &net_targets {
        causal.begin(
            EdgeKind::Eos,
            eos_token(rank.0, chan_code(Channel::Net), q.0),
            &slane,
        );
    }

    // The writer may still be storing its final stolen block: wait for it
    // to retire before flushing, so every on-disk ID is announced before
    // the file channel's EOS (a block whose ID never ships would be
    // lost — caught by the block-accounting tests/benches).
    writer_done.wait();

    // Flush IDs the writer parked after the last data message per consumer.
    {
        let mut p = pending.lock();
        for (q, ids) in p.iter_mut().enumerate() {
            if !ids.is_empty() && !dead[q] {
                let msg = MixedMessage::disk_only(std::mem::take(ids));
                if let Err(e) = mesh.send(Rank(q as u32), Wire::Msg(msg)) {
                    dead[q] = true;
                    metrics.lock().errors.push(wire_fault(rank, e));
                }
            }
        }
    }
    // File-channel EOS after every ID has shipped (FIFO keeps the flushed
    // IDs ahead of it). On a message-passing-only run the kernel reports
    // the file channel inactive — no targets, no wire. Every target is
    // attempted even when some already failed, and the aggregated error is
    // unpacked into individual reports.
    let disk_targets = policy.lock().announce_eos(Channel::Disk);
    if let Err(e) = mesh.send_eos(rank, Channel::Disk, &disk_targets) {
        report_eos(e);
    }
    for &q in &disk_targets {
        causal.begin(
            EdgeKind::Eos,
            eos_token(rank.0, chan_code(Channel::Disk), q.0),
            &slane,
        );
    }
}

/// Writer thread (Fig. 8 + Algorithm 1): steal blocks once the policy
/// kernel's high-water-mark condition fires, store them on the PFS, and
/// announce their IDs for the sender to piggyback. The steal condition and
/// the stolen block's destination both come from the shared
/// [`ProducerPolicy`], consulted atomically with the take
/// ([`BlockQueue::steal_then`]).
#[allow(clippy::too_many_arguments)]
fn writer_loop(
    rank: Rank,
    queue: Arc<BlockQueue>,
    storage: Arc<dyn zipper_pfs::Storage>,
    pending: PendingIds,
    metrics: Arc<Mutex<ProducerMetrics>>,
    policy: SharedProducerPolicy,
    gate: Option<Arc<SenderGate>>,
    mut rec: LaneRecorder,
    mut shard: MetricShard,
    causal: CausalSink,
) {
    let wlane = writer_lane(rank);
    let qlabel = producer_queue(rank);
    loop {
        let (taken, idle) = queue.steal_then(
            // An armed steal-credit window overrides the high-water mark:
            // the sender is parked at a scripted gate and every buffered
            // block behind it is the writer's to steal. Outside a window
            // the kernel's Algorithm-1 condition decides alone.
            |occupancy| {
                (occupancy > 0 && gate.as_ref().is_some_and(|g| g.steal_phase()))
                    || policy.lock().should_steal(occupancy)
            },
            |b| policy.lock().route_disk(b.id()),
        );
        record_wait(&mut rec, SpanKind::Idle, idle);
        let Some((block, dest)) = taken else {
            // Queue closed below threshold. The queue closes as soon as
            // the app finishes, which can be long before the sender has
            // drained it — if the script still holds unmet steal-credit
            // windows, blocks parked behind a future gate are this
            // writer's to steal, so wait for the window to arm instead of
            // retiring (which would fail the rest of the script open and
            // desynchronize the scripted schedule). The sender cancels
            // the remaining windows once it drains, releasing this wait.
            if let Some(g) = &gate {
                if g.await_steal_window() {
                    continue;
                }
            }
            // The normal end of stream.
            policy.lock().writer_retired(RetireReason::Drained);
            if let Some(g) = &gate {
                g.retire_writer();
            }
            break;
        };
        causal.queue_pop(&qlabel, &wlane);
        shard.observe(HistogramId::PfsWriteBytes, block.header.len);
        let stored = rec.time(SpanKind::FsWrite, || storage.put(&block));
        if let Err(e) = stored {
            // PFS failure: the stolen block goes back to the *front* of
            // the producer buffer (the next taker re-takes and re-routes
            // it — the DES writer proc mirrors this requeue-retire-revive
            // sequence exactly), and the writer retires. With a revival
            // budget the kernel grants a comeback: the writer sleeps the
            // configured cooldown and resumes stealing; otherwise the run
            // degrades to message-passing-only. A queue already closed at
            // requeue time is a shutdown race — the block may never ship,
            // which is recorded.
            let closed = queue.is_closed();
            queue.requeue(block);
            // The requeued block re-enters the FIFO join: the next taker's
            // pop pairs with this push, carrying writer→taker causality.
            causal.queue_push(&qlabel, &wlane);
            let (revive, cooldown) = {
                let mut p = policy.lock();
                p.writer_retired(RetireReason::Fault);
                (p.try_revive_writer(), p.recovery().writer_cooldown)
            };
            {
                let mut m = metrics.lock();
                if closed {
                    m.errors.push(RuntimeError::QueueClosed {
                        rank,
                        context: "writer fallback requeue",
                    });
                }
                m.errors.push(RuntimeError::WriterRetired {
                    rank,
                    detail: e.to_string(),
                });
            }
            if revive {
                if !cooldown.is_zero() {
                    rec.time(SpanKind::Retry, || std::thread::sleep(cooldown));
                }
                continue;
            }
            // Dying without a comeback: unmet steal-credit windows can
            // never be satisfied — fail the gate open so the sender is
            // released instead of wedged.
            if let Some(g) = &gate {
                g.retire_writer();
            }
            return;
        }
        // Steal announce: the block became fetchable the moment the put
        // completed; the consumer's `end` half (on-disk ID arrival) joins.
        causal.begin(EdgeKind::Steal, causal_token(block.id()), &wlane);
        pending.lock()[dest.idx()].push(block.id());
        if let Some(g) = &gate {
            g.note_steal();
        }
        let mut m = metrics.lock();
        m.blocks_stolen += 1;
        m.bytes_stolen += block.header.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelMesh;
    use zipper_pfs::{MemFs, Storage};
    use zipper_trace::TraceMode;
    use zipper_types::block::deterministic_payload;
    use zipper_types::{ByteSize, PreserveMode, RoutingPolicy};

    fn tuning(concurrent: bool) -> ZipperTuning {
        ZipperTuning {
            block_size: ByteSize::kib(4),
            producer_slots: 4,
            high_water_mark: 2,
            consumer_slots: 64,
            concurrent_transfer: concurrent,
            preserve: PreserveMode::NoPreserve,
            routing: RoutingPolicy::SourceAffine,
            eos_timeout: Some(std::time::Duration::from_secs(30)),
            recovery: Default::default(),
        }
    }

    /// Drain consumer rank 0's wire channel until `expected_eos`
    /// end-of-stream marks arrived: one Net-channel mark per producer,
    /// plus one Disk-channel mark per producer when concurrent transfer is
    /// on (a disk-only ID flush can arrive between the two marks, so the
    /// collector must not stop at the first).
    fn collect_rank0(
        mesh: &ChannelMesh,
        expected_eos: usize,
    ) -> std::thread::JoinHandle<(Vec<BlockId>, Vec<BlockId>)> {
        let rx = mesh.take_receiver(Rank(0)).unwrap();
        std::thread::spawn(move || {
            let mut net = Vec::new();
            let mut disk = Vec::new();
            let mut eos = 0;
            while eos < expected_eos {
                match rx.recv().unwrap() {
                    Wire::Msg(m) => {
                        if let Some(b) = m.data {
                            net.push(b.id());
                        }
                        disk.extend(m.on_disk);
                    }
                    Wire::Eos(..) => eos += 1,
                }
            }
            (net, disk)
        })
    }

    #[test]
    fn all_blocks_arrive_without_stealing() {
        let mesh = ChannelMesh::new(1, 64);
        let storage = Arc::new(MemFs::new());
        let mut prod = Producer::spawn(Rank(0), tuning(false), mesh.sender(), storage.clone());
        let writer = prod.writer(4096);
        let collector = collect_rank0(&mesh, 1);
        for i in 0..20u32 {
            let id = BlockId::new(Rank(0), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(0),
                StepId(0),
                i,
                20,
                GlobalPos::default(),
                deterministic_payload(id, 256),
            ));
        }
        writer.finish();
        let metrics = prod.join();
        assert!(metrics.errors.is_empty(), "{:?}", metrics.errors);
        let (net, disk) = collector.join().unwrap();
        assert_eq!(net.len(), 20);
        assert!(disk.is_empty());
        assert_eq!(metrics.blocks_sent, 20);
        assert_eq!(metrics.blocks_stolen, 0);
        assert_eq!(storage.len(), 0);
    }

    #[test]
    fn slow_network_triggers_stealing_and_ids_arrive() {
        // Tiny inbox + throttled mesh: the sender cannot keep up, the
        // buffer fills past the high-water mark, the writer steals.
        let mesh = ChannelMesh::new(1, 1).with_throttle(0.5e6, std::time::Duration::ZERO); // 0.5 MB/s
        let storage = Arc::new(MemFs::new());
        let mut prod = Producer::spawn(Rank(0), tuning(true), mesh.sender(), storage.clone());
        let writer = prod.writer(4096);
        let collector = collect_rank0(&mesh, 2); // Net + Disk channel marks
        for i in 0..30u32 {
            let id = BlockId::new(Rank(0), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(0),
                StepId(0),
                i,
                30,
                GlobalPos::default(),
                deterministic_payload(id, 8192),
            ));
        }
        writer.finish();
        let metrics = prod.join();
        let (net, disk) = collector.join().unwrap();
        assert_eq!(net.len() + disk.len(), 30, "every block announced");
        assert!(metrics.blocks_stolen > 0, "expected steals");
        assert_eq!(metrics.blocks_stolen as usize, disk.len());
        assert_eq!(storage.len(), disk.len(), "stolen blocks are on the PFS");
        // Stolen blocks must be stored *before* their IDs were announced.
        for id in disk {
            assert!(storage.contains(id));
        }
        // The derived views are live: the writer thread's fs-write time
        // and the sender's send time came from the trace lanes.
        assert!(metrics.fs_busy() > std::time::Duration::ZERO);
        assert!(metrics.send_busy() > std::time::Duration::ZERO);
    }

    #[test]
    fn write_slab_splits_into_fine_grain_blocks() {
        let mesh = ChannelMesh::new(1, 128);
        let storage = Arc::new(MemFs::new());
        let mut prod = Producer::spawn(Rank(0), tuning(false), mesh.sender(), storage);
        let writer = prod.writer(1024);
        let collector = collect_rank0(&mesh, 1);
        // 4.5 KiB slab with 1 KiB blocks → 5 blocks, last one short.
        let slab = Bytes::from(vec![7u8; 4608]);
        let n = writer.write_slab(StepId(3), GlobalPos::linear(100), slab);
        assert_eq!(n, 5);
        writer.finish();
        prod.join();
        let (net, _) = collector.join().unwrap();
        assert_eq!(net.len(), 5);
        assert!(net.iter().all(|id| id.step == StepId(3)));
        let idxs: Vec<u32> = net.iter().map(|id| id.idx).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn round_robin_routing_spreads_blocks() {
        let mesh = ChannelMesh::new(2, 64);
        let storage = Arc::new(MemFs::new());
        let mut t = tuning(false);
        t.routing = RoutingPolicy::RoundRobin;
        let mut prod = Producer::spawn(Rank(0), t, mesh.sender(), storage);
        let writer = prod.writer(4096);
        let rx0 = mesh.take_receiver(Rank(0)).unwrap();
        let rx1 = mesh.take_receiver(Rank(1)).unwrap();
        let count = |rx: crate::transport::MeshReceiver| {
            std::thread::spawn(move || {
                let mut n = 0;
                while let Wire::Msg(m) = rx.recv().unwrap() {
                    n += usize::from(m.data.is_some());
                }
                n
            })
        };
        let c0 = count(rx0);
        let c1 = count(rx1);
        for i in 0..10u32 {
            let id = BlockId::new(Rank(0), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(0),
                StepId(0),
                i,
                10,
                GlobalPos::default(),
                deterministic_payload(id, 64),
            ));
        }
        writer.finish();
        prod.join();
        assert_eq!(c0.join().unwrap(), 5);
        assert_eq!(c1.join().unwrap(), 5);
    }

    /// Regression test for the duplicated round-robin state bug: the sender
    /// and writer threads used to each own an `rr_counter`, so with stealing
    /// active the two channels dealt to different consumers than a single
    /// rotation would. With the shared kernel, routing order equals take
    /// order equals production order (both takers pop the FIFO front), so
    /// block `i` must land on consumer `i % Q` — no matter which channel
    /// carried it.
    #[test]
    fn round_robin_channels_agree_on_destinations_under_stealing() {
        let consumers = 2usize;
        let blocks = 30u32;
        // Tiny inbox + heavy throttle: the sender falls behind, occupancy
        // crosses the high-water mark, and the writer steals a large share.
        let mesh = ChannelMesh::new(consumers, 1).with_throttle(0.5e6, std::time::Duration::ZERO);
        let storage = Arc::new(MemFs::new());
        let mut t = tuning(true);
        t.routing = RoutingPolicy::RoundRobin;
        t.high_water_mark = 0; // steal from the first backlog block
        let mut prod = Producer::spawn(Rank(0), t, mesh.sender(), storage);
        let writer = prod.writer(4096);
        let collectors: Vec<_> = (0..consumers)
            .map(|q| {
                let rx = mesh.take_receiver(Rank(q as u32)).unwrap();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    // Drain until both channel marks arrive: the post-EOS
                    // disk-ID flush rides between the Net and Disk marks.
                    let mut eos = 0;
                    while eos < 2 {
                        match rx.recv().unwrap() {
                            Wire::Msg(m) => {
                                got.extend(m.data.map(|b| b.id()));
                                got.extend(m.on_disk);
                            }
                            Wire::Eos(..) => eos += 1,
                        }
                    }
                    got
                })
            })
            .collect();
        for i in 0..blocks {
            let id = BlockId::new(Rank(0), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(0),
                StepId(0),
                i,
                blocks,
                GlobalPos::default(),
                deterministic_payload(id, 8192),
            ));
        }
        writer.finish();
        let metrics = prod.join();
        assert!(metrics.errors.is_empty(), "{:?}", metrics.errors);
        assert!(metrics.blocks_stolen > 0, "test needs the writer racing");
        for (q, c) in collectors.into_iter().enumerate() {
            let mut got: Vec<u32> = c.join().unwrap().iter().map(|id| id.idx).collect();
            got.sort_unstable();
            let want: Vec<u32> = (0..blocks)
                .filter(|i| *i as usize % consumers == q)
                .collect();
            assert_eq!(got, want, "consumer {q} got a foreign deal");
        }
    }

    #[test]
    fn detached_sender_writer_revival_delivers_every_block() {
        use zipper_types::{ChaosEntity, ChaosFault, ChaosPlan, RecoveryPolicy};
        let mesh = ChannelMesh::new(1, 64);
        let plan = ChaosPlan::new().with(ChaosEntity::Writer(Rank(0)), 2, ChaosFault::PfsWriteFail);
        let storage = Arc::new(zipper_pfs::ChaosFs::new(
            MemFs::new(),
            Arc::new(plan.scope(ChaosEntity::Writer(Rank(0)))),
        ));
        let mut t = tuning(true);
        t.high_water_mark = 0; // steal from the first backlog block
        t.recovery = RecoveryPolicy {
            writer_cooldown: std::time::Duration::ZERO,
            max_writer_revivals: 1,
            max_consumer_restarts: 0,
        };
        let policy = Arc::new(Mutex::new(ProducerPolicy::from_tuning(Rank(0), 1, &t)));
        let mut prod = Producer::spawn_with_policy_detached(
            Rank(0),
            t,
            mesh.sender(),
            storage.clone(),
            TraceSink::default(),
            policy.clone(),
            true,
        );
        let writer = prod.writer(4096);
        let collector = collect_rank0(&mesh, 2); // Net + Disk channel marks
        for i in 0..6u32 {
            let id = BlockId::new(Rank(0), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(0),
                StepId(0),
                i,
                6,
                GlobalPos::default(),
                deterministic_payload(id, 256),
            ));
        }
        writer.finish();
        let metrics = prod.join();
        let (net, disk) = collector.join().unwrap();
        // Detached: no data wires — every block went through the writer,
        // including the one whose put #2 faulted (requeued, re-stored
        // after the revival).
        assert!(net.is_empty(), "detached sender must not carry data");
        assert_eq!(disk.len(), 6, "every block announced via the file path");
        assert_eq!(metrics.blocks_sent, 0);
        assert_eq!(metrics.blocks_stolen, 6);
        assert_eq!(storage.inner().len(), 6);
        assert_eq!(policy.lock().revivals_used(), 1);
        assert!(
            metrics
                .errors
                .iter()
                .any(|e| matches!(e, RuntimeError::WriterRetired { .. })),
            "the fault is still reported: {:?}",
            metrics.errors
        );
    }

    #[test]
    fn shared_full_sink_collects_step_marked_spans() {
        let sink = TraceSink::wall(TraceMode::Full);
        let mesh = ChannelMesh::new(1, 64);
        let storage = Arc::new(MemFs::new());
        let mut prod =
            Producer::spawn_traced(Rank(3), tuning(false), mesh.sender(), storage, sink.clone());
        let writer = prod.writer(4096);
        let collector = collect_rank0(&mesh, 1);
        for s in 0..4u64 {
            writer.write_slab(
                StepId(s),
                GlobalPos::default(),
                Bytes::from(vec![1u8; 4096]),
            );
        }
        writer.finish();
        prod.join();
        collector.join().unwrap();
        let log = sink.snapshot();
        let app = log.lane_by_label("sim/p3/app").expect("app lane");
        let spans = log.lane_spans(app);
        assert!(!spans.is_empty());
        // One step-marked compute span per write.
        let steps: Vec<u64> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .map(|s| s.step)
            .collect();
        assert_eq!(steps, vec![0, 1, 2, 3]);
        assert!(log.lane_by_label("sim/p3/send").is_some());
    }
}
