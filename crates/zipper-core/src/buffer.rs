//! The bounded block queue backing both the producer and consumer buffers.
//!
//! Semantics follow §4.2/§4.3 exactly:
//!
//! * `push` blocks while the queue is full — that blocked time *is* the
//!   simulation stall the paper measures (Fig. 14's "Stall" bars);
//! * `pop` blocks while empty (the sender/analysis side waiting for data);
//! * `steal` blocks until occupancy **strictly exceeds** a threshold — the
//!   writer thread's condition-variable wait in Algorithm 1 ("wait on a
//!   condition variable … the computation thread will produce data and
//!   signal … when #Blocks in ProducerBuffer > Threshold").
//!
//! All three return the time they spent blocked so callers can account
//! stalls without extra instrumentation.

// Threaded substrate: blocking waits and stall-time spans ARE this module's
// job — the DES twin models the same queue in virtual time. Decisions stay in
// zipper-policy, which this lint keeps wall-clock-free.
#![allow(clippy::disallowed_methods)]
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use zipper_trace::{CounterId, GaugeId, Telemetry};
use zipper_types::{Block, Error, Result};

#[derive(Default)]
struct Inner {
    items: VecDeque<Block>,
    closed: bool,
    peak: usize,
    total_in: u64,
}

/// A bounded, closable, thread-safe FIFO of data blocks.
pub struct BlockQueue {
    inner: Mutex<Inner>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    telemetry: Telemetry,
    depth_gauge: GaugeId,
}

impl BlockQueue {
    /// Create a queue holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BlockQueue {
            inner: Mutex::new(Inner::default()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            telemetry: Telemetry::off(),
            depth_gauge: GaugeId::ProducerQueueDepth,
        }
    }

    /// Publish occupancy to `gauge` and blocked push/pop time to the
    /// stall counters of `telemetry` — the queue-congestion view the
    /// paper reads off `XmitWait`-style counters.
    pub fn with_telemetry(mut self, telemetry: Telemetry, gauge: GaugeId) -> Self {
        self.telemetry = telemetry;
        self.depth_gauge = gauge;
        self
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak occupancy and total inserts so far.
    pub fn stats(&self) -> (usize, u64) {
        let g = self.inner.lock();
        (g.peak, g.total_in)
    }

    /// Insert a block, blocking while the queue is full. Returns the time
    /// spent blocked (the producer stall).
    ///
    /// Returns [`Error::ShutDown`] if the queue is (or becomes, while this
    /// call is blocked) closed. During shutdown a racing pusher and closer
    /// are normal — the caller absorbs the error and drops the block
    /// instead of the whole process aborting.
    pub fn push(&self, block: Block) -> Result<Duration> {
        let t0 = Instant::now();
        let mut g = self.inner.lock();
        while g.items.len() >= self.capacity && !g.closed {
            self.not_full.wait(&mut g);
        }
        if g.closed {
            return Err(Error::ShutDown);
        }
        g.items.push_back(block);
        g.total_in += 1;
        let len = g.items.len();
        g.peak = g.peak.max(len);
        drop(g);
        self.not_empty.notify_all();
        let stalled = t0.elapsed();
        self.telemetry.gauge_add(self.depth_gauge, 1);
        self.telemetry.add(CounterId::BlocksEnqueued, 1);
        self.telemetry
            .add_time(CounterId::QueuePushStallNs, stalled);
        Ok(stalled)
    }

    /// Remove the oldest block, blocking while empty. Returns `None` once
    /// the queue is closed *and* drained. Also reports the blocked time.
    pub fn pop(&self) -> (Option<Block>, Duration) {
        let t0 = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if let Some(b) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                // A pop also changes occupancy relative to steal
                // thresholds; stealers re-check on the next push.
                let waited = t0.elapsed();
                self.telemetry.gauge_add(self.depth_gauge, -1);
                self.telemetry.add(CounterId::BlocksDequeued, 1);
                self.telemetry.add_time(CounterId::QueuePopWaitNs, waited);
                return (Some(b), waited);
            }
            if g.closed {
                let waited = t0.elapsed();
                self.telemetry.add_time(CounterId::QueuePopWaitNs, waited);
                return (None, waited);
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Like [`BlockQueue::pop`], but runs `decide` on the block *inside the
    /// queue lock*, before any other taker can observe the new occupancy.
    ///
    /// This is how the sender thread consults the shared routing policy
    /// atomically with its take: the k-th closure invocation across `pop_then`
    /// and [`BlockQueue::steal_then`] corresponds to the k-th block leaving
    /// the queue, so a take-order policy (round-robin dealing) is
    /// deterministic even with the writer racing for the same front block.
    ///
    /// `decide` must be fast and must not touch this queue (the lock is
    /// held). Lock order is queue → policy.
    pub fn pop_then<R>(
        &self,
        mut decide: impl FnMut(&Block) -> R,
    ) -> (Option<(Block, R)>, Duration) {
        let t0 = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if let Some(b) = g.items.pop_front() {
                let verdict = decide(&b);
                drop(g);
                self.not_full.notify_one();
                let waited = t0.elapsed();
                self.telemetry.gauge_add(self.depth_gauge, -1);
                self.telemetry.add(CounterId::BlocksDequeued, 1);
                self.telemetry.add_time(CounterId::QueuePopWaitNs, waited);
                return (Some((b, verdict)), waited);
            }
            if g.closed {
                let waited = t0.elapsed();
                self.telemetry.add_time(CounterId::QueuePopWaitNs, waited);
                return (None, waited);
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Work-stealing take (Algorithm 1): block until occupancy strictly
    /// exceeds `threshold`, then take the oldest block. Returns `None` when
    /// the queue closes before the threshold is reached again — the writer
    /// thread retires and leaves the remaining blocks to the sender.
    pub fn steal(&self, threshold: usize) -> (Option<Block>, Duration) {
        let t0 = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if g.items.len() > threshold {
                let b = g.items.pop_front().expect("occupancy checked");
                drop(g);
                self.not_full.notify_one();
                self.telemetry.gauge_add(self.depth_gauge, -1);
                self.telemetry.add(CounterId::BlocksDequeued, 1);
                return (Some(b), t0.elapsed());
            }
            if g.closed {
                return (None, t0.elapsed());
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Policy-driven variant of [`BlockQueue::steal`]: blocks until `ready`
    /// approves the current occupancy (Algorithm 1's high-water-mark
    /// condition, supplied by the policy kernel), then takes the oldest
    /// block and runs `decide` on it inside the lock — same atomic
    /// take-and-route contract as [`BlockQueue::pop_then`].
    pub fn steal_then<R>(
        &self,
        ready: impl Fn(usize) -> bool,
        mut decide: impl FnMut(&Block) -> R,
    ) -> (Option<(Block, R)>, Duration) {
        let t0 = Instant::now();
        let mut g = self.inner.lock();
        loop {
            if ready(g.items.len()) {
                let b = g.items.pop_front().expect("policy approved occupancy > 0");
                let verdict = decide(&b);
                drop(g);
                self.not_full.notify_one();
                self.telemetry.gauge_add(self.depth_gauge, -1);
                self.telemetry.add(CounterId::BlocksDequeued, 1);
                return (Some((b, verdict)), t0.elapsed());
            }
            if g.closed {
                return (None, t0.elapsed());
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Non-blocking variant of `steal` used by opportunistic helpers: takes
    /// a block only if occupancy strictly exceeds `threshold` right now.
    pub fn try_steal(&self, threshold: usize) -> Option<Block> {
        let mut g = self.inner.lock();
        if g.items.len() > threshold {
            let b = g.items.pop_front().expect("occupancy checked");
            drop(g);
            self.not_full.notify_one();
            self.telemetry.gauge_add(self.depth_gauge, -1);
            self.telemetry.add(CounterId::BlocksDequeued, 1);
            Some(b)
        } else {
            None
        }
    }

    /// Put a block back at the *front* of the queue — the recovery path's
    /// re-insertion: a writer thread returning a block whose PFS store
    /// faulted, or a restart supervisor replaying a crashed consumer's
    /// backlog. Bypasses both the capacity bound and the closed flag: the
    /// block was already admitted once (capacity accounting stays honest)
    /// and recovery must be able to repopulate a queue that closed around
    /// the failure — poppers drain a closed queue before seeing `None`.
    pub fn requeue(&self, block: Block) {
        let mut g = self.inner.lock();
        g.items.push_front(block);
        g.total_in += 1;
        let len = g.items.len();
        g.peak = g.peak.max(len);
        drop(g);
        self.not_empty.notify_all();
        self.telemetry.gauge_add(self.depth_gauge, 1);
        self.telemetry.add(CounterId::BlocksEnqueued, 1);
    }

    /// Close the queue: poppers drain the remainder then get `None`;
    /// stealers below threshold get `None` immediately.
    /// Wake every thread parked in [`BlockQueue::steal_then`] /
    /// [`BlockQueue::pop_then`] without changing the queue state, so they
    /// re-evaluate their take conditions. Used by the backpressure gate:
    /// arming a steal window changes the writer's `ready` predicate, and
    /// the writer may already be asleep on `not_empty`.
    pub fn nudge(&self) {
        let _g = self.inner.lock();
        self.not_empty.notify_all();
    }

    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zipper_types::block::deterministic_payload;
    use zipper_types::{Block, BlockId, GlobalPos, Rank, StepId};

    fn block(idx: u32) -> Block {
        let id = BlockId::new(Rank(0), StepId(0), idx);
        Block::from_payload(
            Rank(0),
            StepId(0),
            idx,
            64,
            GlobalPos::default(),
            deterministic_payload(id, 128),
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let q = BlockQueue::new(8);
        for i in 0..5 {
            q.push(block(i)).unwrap();
        }
        q.close();
        let mut got = Vec::new();
        while let (Some(b), _) = q.pop() {
            got.push(b.id().idx);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.stats(), (5, 5));
    }

    #[test]
    fn push_blocks_until_space_and_reports_stall() {
        let q = Arc::new(BlockQueue::new(1));
        q.push(block(0)).unwrap();
        let q2 = q.clone();
        let popper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let (b, _) = q2.pop();
            b.unwrap().id().idx
        });
        let stall = q.push(block(1)).unwrap(); // must wait for the pop
        assert!(stall >= Duration::from_millis(40), "stall={stall:?}");
        assert_eq!(popper.join().unwrap(), 0);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BlockQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            let (b, waited) = q2.pop();
            (b.unwrap().id().idx, waited)
        });
        std::thread::sleep(Duration::from_millis(50));
        q.push(block(7)).unwrap();
        let (idx, waited) = h.join().unwrap();
        assert_eq!(idx, 7);
        assert!(waited >= Duration::from_millis(40));
    }

    #[test]
    fn steal_waits_for_threshold() {
        let q = Arc::new(BlockQueue::new(16));
        let q2 = q.clone();
        let stealer = std::thread::spawn(move || {
            let (b, _) = q2.steal(2);
            b.map(|b| b.id().idx)
        });
        // One and two blocks are not enough (threshold is strict).
        q.push(block(0)).unwrap();
        q.push(block(1)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        q.push(block(2)).unwrap(); // occupancy 3 > 2: stealer takes the front
        assert_eq!(stealer.join().unwrap(), Some(0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn steal_retires_on_close_below_threshold() {
        let q = Arc::new(BlockQueue::new(16));
        q.push(block(0)).unwrap();
        let q2 = q.clone();
        let stealer = std::thread::spawn(move || q2.steal(4).0);
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(stealer.join().unwrap().is_none());
        // The leftover block is still there for the sender to drain.
        assert_eq!(q.pop().0.unwrap().id().idx, 0);
        assert!(q.pop().0.is_none());
    }

    #[test]
    fn pop_then_and_steal_then_see_one_take_order() {
        // Take order is the routing order: the closure invocation sequence
        // across both takers must match the FIFO order exactly.
        let q = Arc::new(BlockQueue::new(16));
        for i in 0..6 {
            q.push(block(i)).unwrap();
        }
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (o1, o2) = (order.clone(), order.clone());
        let (a, _) = q.pop_then(|b| o1.lock().push(b.id().idx));
        let (s, _) = q.steal_then(|occ| occ > 2, |b| o2.lock().push(b.id().idx));
        let (c, _) = q.pop_then(|b| order.lock().push(b.id().idx));
        assert_eq!(a.unwrap().0.id().idx, 0);
        assert_eq!(s.unwrap().0.id().idx, 1);
        assert_eq!(c.unwrap().0.id().idx, 2);
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn requeue_bypasses_capacity_and_closed_state() {
        let q = BlockQueue::new(1);
        q.push(block(1)).unwrap(); // full
        q.close();
        q.requeue(block(0)); // lands at the front despite full + closed
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().0.unwrap().id().idx, 0, "requeued block is next");
        assert_eq!(q.pop().0.unwrap().id().idx, 1);
        assert!(q.pop().0.is_none());
        assert_eq!(q.stats(), (2, 2));
    }

    #[test]
    fn requeue_wakes_parked_popper() {
        let q = Arc::new(BlockQueue::new(4));
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop().0.map(|b| b.id().idx));
        std::thread::sleep(Duration::from_millis(30));
        q.requeue(block(9));
        assert_eq!(popper.join().unwrap(), Some(9));
    }

    #[test]
    fn steal_then_retires_on_close_below_threshold() {
        let q = Arc::new(BlockQueue::new(16));
        q.push(block(0)).unwrap();
        let q2 = q.clone();
        let stealer = std::thread::spawn(move || q2.steal_then(|occ| occ > 4, |_| ()).0);
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(stealer.join().unwrap().is_none());
        assert_eq!(q.pop_then(|_| ()).0.unwrap().0.id().idx, 0);
        assert!(q.pop_then(|_| ()).0.is_none());
    }

    #[test]
    fn try_steal_is_nonblocking() {
        let q = BlockQueue::new(8);
        assert!(q.try_steal(0).is_none());
        q.push(block(0)).unwrap();
        assert!(q.try_steal(1).is_none()); // occupancy 1 not > 1
        assert_eq!(q.try_steal(0).unwrap().id().idx, 0);
    }

    #[test]
    fn push_after_close_errors() {
        let q = BlockQueue::new(2);
        q.close();
        assert!(matches!(q.push(block(0)), Err(Error::ShutDown)));
        assert_eq!(q.stats(), (0, 0), "rejected push not counted");
    }

    #[test]
    fn blocked_push_wakes_with_error_on_close() {
        let q = Arc::new(BlockQueue::new(1));
        q.push(block(0)).unwrap();
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push(block(1)));
        std::thread::sleep(Duration::from_millis(30));
        q.close(); // must wake the blocked pusher, not strand it
        assert!(matches!(pusher.join().unwrap(), Err(Error::ShutDown)));
    }

    #[test]
    fn queue_telemetry_tracks_depth_and_stalls() {
        let telemetry = Telemetry::on();
        let q = Arc::new(
            BlockQueue::new(1).with_telemetry(telemetry.clone(), GaugeId::ConsumerQueueDepth),
        );
        q.push(block(0)).unwrap();
        assert_eq!(
            telemetry.snapshot().gauge(GaugeId::ConsumerQueueDepth),
            1,
            "push raised the occupancy gauge"
        );
        let q2 = q.clone();
        let popper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            q2.pop();
            q2.pop();
        });
        q.push(block(1)).unwrap(); // blocks until the popper drains one
        popper.join().unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.gauge(GaugeId::ConsumerQueueDepth), 0);
        assert_eq!(snap.counter(CounterId::BlocksEnqueued), 2);
        assert_eq!(snap.counter(CounterId::BlocksDequeued), 2);
        assert!(
            snap.counter(CounterId::QueuePushStallNs) >= 30_000_000,
            "blocked push time recorded: {}ns",
            snap.counter(CounterId::QueuePushStallNs)
        );
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(BlockQueue::new(4));
        let n_per = 200u32;
        let producers: Vec<_> = (0..3u32)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..n_per {
                        let id = BlockId::new(Rank(p), StepId(0), i);
                        q.push(Block::from_payload(
                            Rank(p),
                            StepId(0),
                            i,
                            n_per,
                            GlobalPos::default(),
                            deterministic_payload(id, 16),
                        ))
                        .unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let (Some(b), _) = q.pop() {
                        got.push(b.id());
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<_> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 3 * n_per as usize, "every block exactly once");
    }
}
