//! The consumer runtime module (Fig. 9): receiver thread + reader thread +
//! (Preserve mode) output thread feeding a consumer buffer, behind the
//! `Zipper.read()` API.
//!
//! Like the producer module, every thread records spans to the run's
//! [`TraceSink`]: the receiver lane captures message-channel recv time,
//! the reader lane captures PFS fetch time, and the application lane
//! captures read-wait (blocked in `Zipper.read`) and analysis time (the
//! step-marked gaps between reads). [`ConsumerMetrics`] time fields are
//! derived from these lanes at [`Consumer::join`].

// Threaded substrate: read-wait and receive timing against the real clock is
// this module's job — the DES twin replays the same policy in virtual time.
#![allow(clippy::disallowed_methods)]
use crate::buffer::BlockQueue;
use crate::metrics::ConsumerMetrics;
use crate::producer::{causal_token, chan_code, record_wait};
use crate::transport::{MeshReceiver, Wire};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use zipper_pfs::Storage;
use zipper_policy::ConsumerPolicy;
use zipper_trace::{eos_token, CausalSink, EdgeKind, GaugeId, LaneRecorder, SpanKind, TraceSink};
use zipper_types::{
    panic_detail, Block, BlockId, ChaosFault, ChaosScope, Error, Rank, RuntimeError, ZipperTuning,
};

/// One consumer rank's decision kernel, shared by its receiver thread (EOS
/// completion, Preserve verdicts) and exposed to the conformance harness.
pub type SharedConsumerPolicy = Arc<Mutex<ConsumerPolicy>>;

/// Lane label of consumer `rank`'s receiver thread.
pub fn recv_lane(rank: Rank) -> String {
    format!("ana/q{}/recv", rank.0)
}

/// Lane label of consumer `rank`'s PFS reader thread.
pub fn reader_lane(rank: Rank) -> String {
    format!("ana/q{}/fs", rank.0)
}

/// Lane label of consumer `rank`'s application (analysis) lane.
pub fn analysis_lane(rank: Rank) -> String {
    format!("ana/q{}/app", rank.0)
}

/// Causal-queue label of consumer `rank`'s delivery buffer (join key
/// only — never part of a path signature).
fn consumer_queue(rank: Rank) -> String {
    format!("q/ana/c{}", rank.0)
}

/// Causal-queue label of the receiver→reader on-disk ID handoff.
fn ids_queue(rank: Rank) -> String {
    format!("ids/ana/c{}", rank.0)
}

/// The application lane plus the step of the last delivered block, so the
/// analysis gap between two reads can be attributed to the step that was
/// being analyzed.
struct AppLane {
    rec: LaneRecorder,
    step: u64,
    /// True once `read` returned `None` — the stream was fully drained.
    /// A reader dropped before that abandons the stream; its `Drop` guard
    /// closes the queue and records the abandonment so the runtime
    /// threads shut down instead of blocking on delivery forever.
    done: bool,
}

/// Application-facing reader handle: the paper's
/// `Zipper.read(block_id, data, block_size)`. Blocks are delivered in
/// arrival order (any interleaving of network and file paths); each block's
/// header carries the step / source-rank / position metadata the analysis
/// needs (§4.2).
pub struct ZipperReader {
    rank: Rank,
    queue: Arc<BlockQueue>,
    metrics: Arc<Mutex<ConsumerMetrics>>,
    lane: Mutex<AppLane>,
    /// Log of every delivered block ID, shared with a
    /// [`ConsumerRecovery`] handle — the replay backlog after a crash.
    delivered: Option<Arc<Mutex<Vec<BlockId>>>>,
    /// This consumer's `Analysis` chaos scope: scripted read ordinals
    /// panic ([`ChaosFault::CrashApp`]) before any block is taken.
    chaos: Option<Arc<ChaosScope>>,
    /// A recovery-managed reader: its `Drop` leaves the queue open and the
    /// abandonment unaccounted, because the restart supervisor owns both
    /// (it replays the backlog and hands out a fresh reader instead of
    /// tearing the module down).
    recoverable: bool,
    /// Edge recording for queue handoffs (pop side of the FIFO join).
    causal: CausalSink,
    queue_label: String,
    app_label: String,
}

impl ZipperReader {
    /// Fetch the next available block; `None` once every producer finished
    /// and all their blocks were delivered.
    ///
    /// Time blocked in here is recorded as a `ReadWait` span; the time
    /// *since the previous call* is recorded as a step-marked `Analysis`
    /// span — from the trace's point of view, whatever the application did
    /// between reads was analyzing the previously delivered block.
    pub fn read(&self) -> Option<Block> {
        if let Some(scope) = &self.chaos {
            // The scope counts read *calls*; a scripted CrashApp fires
            // before the pop, so the current block stays in the queue and
            // the delivered log holds exactly the pre-crash backlog.
            if scope.next() == Some(ChaosFault::CrashApp) {
                panic!("chaos: injected application crash on read #{}", scope.ops());
            }
        }
        let mut g = self.lane.lock();
        let prev_step = g.step;
        g.rec.close_gap(SpanKind::Analysis, prev_step);
        let (block, waited) = self.queue.pop();
        record_wait(&mut g.rec, SpanKind::ReadWait, waited);
        match &block {
            Some(b) => {
                g.step = b.id().step.0;
                g.rec.mark();
                self.causal.queue_pop(&self.queue_label, &self.app_label);
                if let Some(log) = &self.delivered {
                    log.lock().push(b.id());
                }
                self.metrics.lock().blocks_delivered += 1;
            }
            None => {
                g.done = true;
                g.rec.flush(); // end of stream: lane is complete
            }
        }
        block
    }

    /// Iterator adapter over [`ZipperReader::read`].
    pub fn iter(&self) -> impl Iterator<Item = Block> + '_ {
        std::iter::from_fn(move || self.read())
    }
}

impl Drop for ZipperReader {
    fn drop(&mut self) {
        if self.recoverable {
            return;
        }
        let done = self.lane.lock().done;
        if !done {
            // The application abandoned the stream (panicked or returned
            // early). Close the queue so blocked runtime threads wake with
            // a typed error instead of deadlocking, and account the blocks
            // that will never be delivered.
            self.queue.close();
            let dropped = self.queue.len() as u64;
            self.metrics
                .lock()
                .errors
                .push(RuntimeError::ReaderAbandoned {
                    rank: self.rank,
                    dropped_blocks: dropped,
                });
        }
    }
}

/// Recovery handle for one consumer rank, taken instead of the plain
/// reader ([`Consumer::recovery`]). It hands out *recoverable* readers and
/// owns the delivered-block log a restart supervisor replays from the
/// Preserve store after a [`ChaosFault::CrashApp`] (or any application
/// panic): the crashed closure's partial progress is discarded, the
/// already-delivered backlog is re-fetched from storage and requeued at
/// the front of the consumer buffer in original delivery order, and a
/// fresh reader rejoins the still-flowing live traffic — no block is lost
/// or duplicated in the final (successful) pass.
///
/// Replay requires Preserve mode: only there is every delivered block
/// durable on the PFS.
pub struct ConsumerRecovery {
    rank: Rank,
    queue: Arc<BlockQueue>,
    metrics: Arc<Mutex<ConsumerMetrics>>,
    sink: TraceSink,
    delivered: Arc<Mutex<Vec<BlockId>>>,
    chaos: Option<Arc<ChaosScope>>,
}

impl ConsumerRecovery {
    /// A fresh recoverable reader on this rank's analysis lane. Call once
    /// per (re)start; readers crash-closed by a panic are simply dropped.
    pub fn fresh_reader(&self) -> ZipperReader {
        let mut rec = self.sink.recorder(analysis_lane(self.rank));
        rec.mark();
        ZipperReader {
            rank: self.rank,
            queue: self.queue.clone(),
            metrics: self.metrics.clone(),
            lane: Mutex::new(AppLane {
                rec,
                step: 0,
                done: false,
            }),
            delivered: Some(self.delivered.clone()),
            chaos: self.chaos.clone(),
            recoverable: true,
            causal: self.sink.causal().clone(),
            queue_label: consumer_queue(self.rank),
            app_label: analysis_lane(self.rank),
        }
    }

    /// Replay the crashed reader's backlog: take (and clear) the delivered
    /// log, fetch each block from `storage`, and requeue it at the front
    /// of the consumer buffer in original delivery order. Returns the
    /// number of blocks replayed.
    ///
    /// Network-delivered blocks are persisted by the asynchronous output
    /// thread, so a block the application already saw may not be durable
    /// yet at crash time — each fetch is retried until `fetch_timeout`
    /// elapses before the replay gives up.
    pub fn replay_from(
        &self,
        storage: &dyn Storage,
        fetch_timeout: std::time::Duration,
    ) -> zipper_types::Result<usize> {
        let ids = std::mem::take(&mut *self.delivered.lock());
        // Requeue in reverse: the last push_front ends up first, so the
        // fresh reader re-reads the backlog in the original order.
        for id in ids.iter().rev() {
            let t0 = std::time::Instant::now();
            let block = loop {
                match storage.get(*id) {
                    Ok(b) => break b,
                    Err(e) => {
                        if t0.elapsed() >= fetch_timeout {
                            return Err(e);
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            };
            self.queue.requeue(block);
            // Replayed blocks re-enter the FIFO join, attributed to the
            // analysis lane (the restart supervisor acts for the app).
            self.sink
                .causal()
                .queue_push(&consumer_queue(self.rank), &analysis_lane(self.rank));
        }
        Ok(ids.len())
    }

    /// Blocks delivered (and not yet replayed) so far — the would-be
    /// replay backlog.
    pub fn delivered(&self) -> usize {
        self.delivered.lock().len()
    }

    /// Give up on this rank for good: close the consumer buffer so the
    /// runtime threads fail soft instead of blocking on a reader that
    /// will never return. A restart supervisor calls this when the
    /// restart budget is exhausted — it is the recoverable counterpart of
    /// a plain reader's abandoning `Drop`.
    pub fn abandon(&self) {
        self.queue.close();
        let dropped = self.queue.len() as u64;
        self.metrics
            .lock()
            .errors
            .push(RuntimeError::ReaderAbandoned {
                rank: self.rank,
                dropped_blocks: dropped,
            });
    }
}

/// One consumer rank's runtime: owns receiver/reader/output threads.
pub struct Consumer {
    rank: Rank,
    queue: Arc<BlockQueue>,
    metrics: Arc<Mutex<ConsumerMetrics>>,
    sink: TraceSink,
    closer: Option<JoinHandle<()>>,
    output: Option<JoinHandle<()>>,
    reader_taken: bool,
}

impl Consumer {
    /// Spawn the runtime module for consumer `rank` with a private
    /// totals-mode trace sink (stand-alone use; workflow runs share one
    /// sink via [`Consumer::spawn_traced`]).
    pub fn spawn(
        rank: Rank,
        tuning: ZipperTuning,
        producers: usize,
        mesh_rx: MeshReceiver,
        storage: Arc<dyn Storage>,
    ) -> Consumer {
        Self::spawn_traced(
            rank,
            tuning,
            producers,
            mesh_rx,
            storage,
            TraceSink::default(),
        )
    }

    /// Spawn the runtime module for consumer `rank`.
    ///
    /// * `producers` — total number of producer ranks (for EOS counting).
    /// * `mesh_rx` — this rank's endpoint of the message channel.
    /// * `storage` — the PFS the reader thread fetches stolen blocks from
    ///   and the output thread stores into (Preserve mode).
    /// * `sink` — the run's trace sink (shared by every rank of one run).
    pub fn spawn_traced(
        rank: Rank,
        tuning: ZipperTuning,
        producers: usize,
        mesh_rx: MeshReceiver,
        storage: Arc<dyn Storage>,
        sink: TraceSink,
    ) -> Consumer {
        let policy = Arc::new(Mutex::new(ConsumerPolicy::from_tuning(
            rank, producers, &tuning,
        )));
        Self::spawn_with_policy(rank, tuning, producers, mesh_rx, storage, sink, policy)
    }

    /// Like [`Consumer::spawn_traced`], but driving a caller-supplied
    /// policy kernel — the hook the conformance harness uses to record a
    /// [`zipper_policy::DecisionTrace`] of every EOS/Preserve decision this
    /// rank makes (pass a [`ConsumerPolicy::recorded`] policy and keep a
    /// clone of the `Arc`).
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_policy(
        rank: Rank,
        tuning: ZipperTuning,
        producers: usize,
        mesh_rx: MeshReceiver,
        storage: Arc<dyn Storage>,
        sink: TraceSink,
        policy: SharedConsumerPolicy,
    ) -> Consumer {
        tuning.validate().expect("invalid tuning");
        assert!(producers > 0, "need at least one producer");
        assert_eq!(
            policy.lock().rank(),
            rank,
            "policy built for a different rank"
        );
        let queue = Arc::new(
            BlockQueue::new(tuning.consumer_slots)
                .with_telemetry(sink.telemetry().clone(), GaugeId::ConsumerQueueDepth),
        );
        let metrics = Arc::new(Mutex::new(ConsumerMetrics::default()));

        let (ids_tx, ids_rx): (Sender<BlockId>, Receiver<BlockId>) = unbounded();
        let preserve = tuning.preserve.is_preserve();
        let (out_tx, out_rx): (Option<Sender<Block>>, Option<Receiver<Block>>) = if preserve {
            let (t, r) = unbounded();
            (Some(t), Some(r))
        } else {
            (None, None)
        };

        // Receiver thread (Fig. 9 step 1): split mixed messages. The
        // optional EOS watchdog bounds how long it will sit in `recv` with
        // end-of-stream markers still missing: a dead producer, a lost EOS,
        // or a wedged transport then surfaces as a typed error instead of
        // hanging `Consumer::join` forever. In-band transport faults are
        // recorded and the stream continues (the transport stayed aligned).
        let eos_timeout = tuning.eos_timeout;
        let receiver = {
            let queue = queue.clone();
            let tm = metrics.clone();
            let out_tx = out_tx.clone();
            let rpolicy = policy.clone();
            let rlane = recv_lane(rank);
            let mut rec = sink.recorder(rlane.clone());
            let causal = sink.causal().clone();
            let cq_label = consumer_queue(rank);
            let ids_label = ids_queue(rank);
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-receiver-{rank}"))
                .spawn(move || {
                    let mut discarding = false;
                    loop {
                        let wire = rec.time(SpanKind::Recv, || match eos_timeout {
                            Some(t) => mesh_rx.recv_timeout(t),
                            None => mesh_rx.recv(),
                        });
                        match wire {
                            Ok(Wire::Msg(m)) => {
                                for id in m.on_disk {
                                    // Completes the writer's steal announce,
                                    // then hands the ID to the reader thread
                                    // which fetches it from the PFS.
                                    causal.end(EdgeKind::Steal, causal_token(id), &rlane);
                                    causal.queue_push(&ids_label, &rlane);
                                    let _ = ids_tx.send(id);
                                }
                                if let Some(b) = m.data {
                                    causal.end(EdgeKind::Wire, causal_token(b.id()), &rlane);
                                    tm.lock().blocks_net += 1;
                                    if rpolicy.lock().store_on_arrival(b.id()) {
                                        // Network blocks are not yet on the
                                        // PFS: Preserve mode must store them
                                        // (on_disk = false path of §4.2).
                                        if let Some(out) = &out_tx {
                                            let _ = out.send(b.clone());
                                        }
                                    }
                                    if discarding {
                                        continue;
                                    }
                                    match queue.push(b) {
                                        Ok(stalled) => {
                                            record_wait(&mut rec, SpanKind::Stall, stalled);
                                            causal.queue_push(&cq_label, &rlane);
                                        }
                                        Err(_) => {
                                            // The application abandoned its
                                            // reader. Keep draining the mesh so
                                            // producers do not block on a full
                                            // inbox, but discard the blocks.
                                            discarding = true;
                                            let mut p = rpolicy.lock();
                                            p.reader_abandoned();
                                            drop(p);
                                            tm.lock().errors.push(RuntimeError::QueueClosed {
                                                rank,
                                                context: "receiver push",
                                            });
                                        }
                                    }
                                }
                            }
                            Ok(Wire::Eos(p, ch)) => {
                                // Per-channel end-of-stream marks, exactly
                                // as the DES receiver counts them: the
                                // message channel closes as soon as the
                                // sender drains, the file channel only
                                // after the last stolen ID shipped.
                                causal.end(
                                    EdgeKind::Eos,
                                    eos_token(p.0, chan_code(ch), rank.0),
                                    &rlane,
                                );
                                if rpolicy.lock().note_eos(p, ch).is_complete() {
                                    break;
                                }
                            }
                            Err(Error::Timeout(_)) => {
                                let (seen, expected) = rpolicy.lock().on_timeout();
                                tm.lock().errors.push(RuntimeError::EosTimeout {
                                    rank,
                                    eos_seen: seen,
                                    eos_expected: expected,
                                });
                                break;
                            }
                            Err(Error::Runtime(re)) => {
                                tm.lock().errors.push(re);
                            }
                            Err(_) => {
                                tm.lock().errors.push(RuntimeError::ChannelDisconnected {
                                    rank,
                                    context: "message channel closed mid-stream",
                                });
                                break;
                            }
                        }
                    }
                });
            match spawned {
                Ok(h) => Some(h),
                Err(_) => {
                    metrics
                        .lock()
                        .errors
                        .push(RuntimeError::ChannelDisconnected {
                            rank,
                            context: "receiver thread could not be spawned",
                        });
                    None
                }
            }
        };

        // Reader thread (Fig. 9 step 2): fetch announced on-disk blocks.
        let reader = {
            let queue = queue.clone();
            let tm = metrics.clone();
            let storage = storage.clone();
            let flane = reader_lane(rank);
            let mut rec = sink.recorder(flane.clone());
            let causal = sink.causal().clone();
            let cq_label = consumer_queue(rank);
            let ids_label = ids_queue(rank);
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-reader-{rank}"))
                .spawn(move || {
                    for id in ids_rx {
                        causal.queue_pop(&ids_label, &flane);
                        let t0 = causal.now();
                        match rec.time(SpanKind::FsRead, || storage.get(id)) {
                            Ok(b) => {
                                // The fetch itself is a Pfs self-edge: the
                                // stolen block's detour back from the PFS.
                                causal.edge_at(
                                    EdgeKind::Pfs,
                                    &flane,
                                    t0,
                                    &flane,
                                    causal.now(),
                                    causal_token(id),
                                );
                                tm.lock().blocks_disk += 1;
                                match queue.push(b) {
                                    Ok(stalled) => {
                                        record_wait(&mut rec, SpanKind::Stall, stalled);
                                        causal.queue_push(&cq_label, &flane);
                                    }
                                    Err(_) => {
                                        // Reader abandoned; remaining IDs
                                        // would only feed a closed queue.
                                        tm.lock().errors.push(RuntimeError::QueueClosed {
                                            rank,
                                            context: "reader push",
                                        });
                                        break;
                                    }
                                }
                            }
                            Err(e) => tm.lock().errors.push(RuntimeError::BlockFetchFailed {
                                rank,
                                detail: e.to_string(),
                            }),
                        }
                    }
                });
            match spawned {
                Ok(h) => Some(h),
                Err(_) => {
                    metrics
                        .lock()
                        .errors
                        .push(RuntimeError::ChannelDisconnected {
                            rank,
                            context: "reader thread could not be spawned",
                        });
                    None
                }
            }
        };

        // Output thread (Fig. 9 step 3, Preserve mode only): persist
        // network-delivered blocks. A store failure loses preservation for
        // that block only; the stream keeps flowing.
        let output = out_rx.and_then(|rx| {
            let out_metrics = metrics.clone();
            let mut rec = sink.recorder(format!("ana/q{}/out", rank.0));
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-output-{rank}"))
                .spawn(move || {
                    for b in rx {
                        match rec.time(SpanKind::FsWrite, || storage.put(&b)) {
                            Ok(()) => out_metrics.lock().blocks_stored += 1,
                            Err(e) => out_metrics.lock().errors.push(RuntimeError::StoreFailed {
                                rank,
                                detail: e.to_string(),
                            }),
                        }
                    }
                });
            match spawned {
                Ok(h) => Some(h),
                Err(_) => {
                    metrics.lock().errors.push(RuntimeError::StoreFailed {
                        rank,
                        detail: "output thread could not be spawned".into(),
                    });
                    None
                }
            }
        });
        drop(out_tx);

        // Closer: the consumer queue may close only after the receiver has
        // seen all EOS *and* the reader drained every announced ID. A
        // panicked runtime thread is folded into the metrics, and the queue
        // is closed regardless so the application's reads terminate.
        let closer = {
            let tq = queue.clone();
            let tm = metrics.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("zipper-closer-{rank}"))
                .spawn(move || {
                    for (h, role) in [
                        (receiver, "consumer receiver thread"),
                        (reader, "consumer reader thread"),
                    ] {
                        if let Some(h) = h {
                            if let Err(payload) = h.join() {
                                tm.lock().errors.push(RuntimeError::AppPanicked {
                                    rank,
                                    role,
                                    detail: panic_detail(payload.as_ref()),
                                });
                            }
                        }
                    }
                    tq.close();
                });
            match spawned {
                Ok(h) => Some(h),
                Err(_) => {
                    // No closer: close now so reads cannot hang. Any blocks
                    // still in flight surface as QueueClosed reports.
                    queue.close();
                    metrics
                        .lock()
                        .errors
                        .push(RuntimeError::ChannelDisconnected {
                            rank,
                            context: "closer thread could not be spawned",
                        });
                    None
                }
            }
        };

        Consumer {
            rank,
            queue,
            metrics,
            sink,
            closer,
            output,
            reader_taken: false,
        }
    }

    /// The application-facing reader handle (take once).
    pub fn reader(&mut self) -> ZipperReader {
        assert!(!self.reader_taken, "reader handle already taken");
        self.reader_taken = true;
        let mut rec = self.sink.recorder(analysis_lane(self.rank));
        // Arm the analysis-gap marker: time from here to the first read is
        // the analysis setup attributed to step 0.
        rec.mark();
        ZipperReader {
            rank: self.rank,
            queue: self.queue.clone(),
            metrics: self.metrics.clone(),
            lane: Mutex::new(AppLane {
                rec,
                step: 0,
                done: false,
            }),
            delivered: None,
            chaos: None,
            recoverable: false,
            causal: self.sink.causal().clone(),
            queue_label: consumer_queue(self.rank),
            app_label: analysis_lane(self.rank),
        }
    }

    /// The recovery handle (take *instead of* [`Consumer::reader`]): hands
    /// out recoverable readers whose crashes a restart supervisor can heal
    /// by Preserve-store replay. `chaos` optionally attaches this rank's
    /// `Analysis` chaos scope, whose scripted ordinals panic inside
    /// [`ZipperReader::read`].
    pub fn recovery(&mut self, chaos: Option<Arc<ChaosScope>>) -> ConsumerRecovery {
        assert!(!self.reader_taken, "reader handle already taken");
        self.reader_taken = true;
        ConsumerRecovery {
            rank: self.rank,
            queue: self.queue.clone(),
            metrics: self.metrics.clone(),
            sink: self.sink.clone(),
            delivered: Arc::new(Mutex::new(Vec::new())),
            chaos,
        }
    }

    /// Join the runtime threads and return this rank's metrics, with the
    /// time fields derived from the rank's trace lanes. The application
    /// should have drained its [`ZipperReader`] first (reads until `None` —
    /// which also flushes the analysis lane); a reader dropped early is
    /// absorbed by its `Drop` guard and reported in `metrics.errors`.
    ///
    /// Never panics and never blocks indefinitely while the EOS watchdog
    /// is enabled: runtime-thread panics are folded into the metrics as
    /// [`RuntimeError::AppPanicked`].
    pub fn join(mut self) -> ConsumerMetrics {
        for (h, role) in [
            (self.closer.take(), "consumer closer thread"),
            (self.output.take(), "consumer output thread"),
        ] {
            if let Some(h) = h {
                if let Err(payload) = h.join() {
                    // The closer closes the queue on its normal path; if it
                    // died, close here so application reads still terminate.
                    self.queue.close();
                    self.metrics.lock().errors.push(RuntimeError::AppPanicked {
                        rank: self.rank,
                        role,
                        detail: panic_detail(payload.as_ref()),
                    });
                }
            }
        }
        let mut m = self.metrics.lock().clone();
        m.recv = self.sink.lane_totals(&recv_lane(self.rank));
        m.disk = self.sink.lane_totals(&reader_lane(self.rank));
        m.app = self.sink.lane_totals(&analysis_lane(self.rank));
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::Producer;
    use crate::transport::ChannelMesh;
    use zipper_pfs::MemFs;
    use zipper_types::block::deterministic_payload;
    use zipper_types::{ByteSize, GlobalPos, PreserveMode, RoutingPolicy, StepId};

    fn tuning(preserve: PreserveMode, concurrent: bool) -> ZipperTuning {
        ZipperTuning {
            block_size: ByteSize::kib(4),
            producer_slots: 4,
            high_water_mark: 2,
            consumer_slots: 64,
            concurrent_transfer: concurrent,
            preserve,
            routing: RoutingPolicy::SourceAffine,
            eos_timeout: Some(std::time::Duration::from_secs(30)),
            recovery: Default::default(),
        }
    }

    fn run_pipeline(
        preserve: PreserveMode,
        concurrent: bool,
        throttle: Option<f64>,
        n_blocks: u32,
        block_len: usize,
        producer_delay: Option<std::time::Duration>,
    ) -> (
        Vec<BlockId>,
        crate::metrics::ProducerMetrics,
        ConsumerMetrics,
        Arc<MemFs>,
    ) {
        let inbox = if throttle.is_some() { 2 } else { 64 };
        let mut mesh = ChannelMesh::new(1, inbox);
        if let Some(bw) = throttle {
            mesh = mesh.with_throttle(bw, std::time::Duration::ZERO);
        }
        let storage = Arc::new(MemFs::new());
        let t = tuning(preserve, concurrent);
        let mut cons = Consumer::spawn(
            Rank(0),
            t,
            1,
            mesh.take_receiver(Rank(0)).unwrap(),
            storage.clone(),
        );
        let reader = cons.reader();
        let mut prod = Producer::spawn(Rank(0), t, mesh.sender(), storage.clone());
        let writer = prod.writer(block_len);

        let feeder = std::thread::spawn(move || {
            for i in 0..n_blocks {
                let id = BlockId::new(Rank(0), StepId(0), i);
                writer.write(Block::from_payload(
                    Rank(0),
                    StepId(0),
                    i,
                    n_blocks,
                    GlobalPos::default(),
                    deterministic_payload(id, block_len),
                ));
                if let Some(d) = producer_delay {
                    // A compute-bound producer: the buffer stays near-empty
                    // so the writer thread finds nothing to steal (§6.2's
                    // O(n^1.5) regime).
                    std::thread::sleep(d);
                }
            }
            writer.finish();
        });

        let mut got = Vec::new();
        while let Some(b) = reader.read() {
            // Verify payload integrity end to end.
            assert_eq!(b.payload, deterministic_payload(b.id(), block_len));
            got.push(b.id());
        }
        feeder.join().unwrap();
        let pm = prod.join();
        let cm = cons.join();
        (got, pm, cm, storage)
    }

    #[test]
    fn every_block_delivered_exactly_once_fast_network() {
        let (mut got, pm, cm, storage) = run_pipeline(
            PreserveMode::NoPreserve,
            true,
            None,
            50,
            512,
            Some(std::time::Duration::from_micros(300)),
        );
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 50);
        assert_eq!(pm.blocks_written, 50);
        assert_eq!(cm.blocks_delivered, 50);
        assert!(cm.errors.is_empty(), "{:?}", cm.errors);
        // Fast network: nothing needed the file path, nothing persisted.
        assert_eq!(storage.len(), 0);
        // The consumer spent time waiting for the compute-bound producer,
        // and that wait is visible through the derived view.
        assert!(cm.read_wait() > std::time::Duration::ZERO);
        assert!(cm.recv_busy() > std::time::Duration::ZERO);
    }

    #[test]
    fn dual_channel_blocks_arrive_via_both_paths() {
        // Slow network forces stealing; every block still arrives once.
        let (mut got, pm, cm, _storage) =
            run_pipeline(PreserveMode::NoPreserve, true, Some(0.5e6), 40, 8192, None);
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 40, "all blocks exactly once");
        assert!(pm.blocks_stolen > 0, "expected file-path traffic");
        assert_eq!(cm.blocks_disk, pm.blocks_stolen);
        assert_eq!(cm.blocks_net, pm.blocks_sent);
        assert!(
            cm.disk_busy() > std::time::Duration::ZERO,
            "fetches are timed"
        );
    }

    #[test]
    fn preserve_mode_stores_every_block() {
        let (got, pm, cm, storage) =
            run_pipeline(PreserveMode::Preserve, true, Some(1e6), 30, 4096, None);
        assert_eq!(got.len(), 30);
        // Every block ends on the PFS exactly once: stolen ones by the
        // writer thread, network ones by the output thread.
        assert_eq!(storage.len(), 30);
        assert_eq!(cm.blocks_stored + pm.blocks_stolen, 30);
        for id in got {
            assert!(storage.contains(id));
        }
    }

    #[test]
    fn no_preserve_without_stealing_keeps_pfs_empty() {
        let (_, pm, _, storage) =
            run_pipeline(PreserveMode::NoPreserve, false, None, 25, 256, None);
        assert_eq!(pm.blocks_stolen, 0);
        assert_eq!(storage.len(), 0);
    }

    #[test]
    fn multiple_producers_multiple_consumers() {
        let producers = 4u32;
        let consumers = 2u32;
        let per_rank = 30u32;
        let mesh = Arc::new(ChannelMesh::new(consumers as usize, 8));
        let storage: Arc<MemFs> = Arc::new(MemFs::new());
        let t = tuning(PreserveMode::NoPreserve, true);

        let mut cons_handles = Vec::new();
        for q in 0..consumers {
            let mut c = Consumer::spawn(
                Rank(q),
                t,
                producers as usize,
                mesh.take_receiver(Rank(q)).unwrap(),
                storage.clone(),
            );
            let r = c.reader();
            cons_handles.push((
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    while let Some(b) = r.read() {
                        ids.push(b.id());
                    }
                    ids
                }),
                c,
            ));
        }

        let mut prod_handles = Vec::new();
        for p in 0..producers {
            let mut prod = Producer::spawn(Rank(p), t, mesh.sender(), storage.clone());
            let w = prod.writer(512);
            prod_handles.push((
                std::thread::spawn(move || {
                    for i in 0..per_rank {
                        let id = BlockId::new(Rank(p), StepId(0), i);
                        w.write(Block::from_payload(
                            Rank(p),
                            StepId(0),
                            i,
                            per_rank,
                            GlobalPos::default(),
                            deterministic_payload(id, 512),
                        ));
                    }
                    w.finish();
                }),
                prod,
            ));
        }

        for (h, prod) in prod_handles {
            h.join().unwrap();
            prod.join();
        }
        let mut all = Vec::new();
        for (h, c) in cons_handles {
            let ids = h.join().unwrap();
            // SourceAffine routing: consumer q must only see ranks ≡ q (mod 2).
            all.extend(ids);
            c.join();
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), (producers * per_rank) as usize);
    }

    #[test]
    fn source_affine_routing_respected() {
        let mesh = ChannelMesh::new(2, 8);
        let storage: Arc<MemFs> = Arc::new(MemFs::new());
        let t = tuning(PreserveMode::NoPreserve, false);
        let readers: Vec<_> = (0..2)
            .map(|q| {
                let mut c = Consumer::spawn(
                    Rank(q),
                    t,
                    2,
                    mesh.take_receiver(Rank(q)).unwrap(),
                    storage.clone(),
                );
                let r = c.reader();
                (
                    std::thread::spawn(move || {
                        let mut srcs: Vec<Rank> = Vec::new();
                        while let Some(b) = r.read() {
                            srcs.push(b.id().src);
                        }
                        srcs
                    }),
                    c,
                )
            })
            .collect();
        for p in 0..2u32 {
            let mut prod = Producer::spawn(Rank(p), t, mesh.sender(), storage.clone());
            let w = prod.writer(128);
            for i in 0..10u32 {
                let id = BlockId::new(Rank(p), StepId(0), i);
                w.write(Block::from_payload(
                    Rank(p),
                    StepId(0),
                    i,
                    10,
                    GlobalPos::default(),
                    deterministic_payload(id, 128),
                ));
            }
            w.finish();
            prod.join();
        }
        for (q, (h, c)) in readers.into_iter().enumerate() {
            let srcs = h.join().unwrap();
            assert_eq!(srcs.len(), 10);
            assert!(srcs.iter().all(|s| s.idx() % 2 == q));
            c.join();
        }
    }

    #[test]
    fn crashed_reader_replays_from_preserve_and_loses_nothing() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use zipper_types::{ChaosEntity, ChaosFault, ChaosPlan};

        // Preserve mode: every block becomes durable, so a crashed
        // consumer can replay its delivered backlog from the PFS.
        let n_blocks = 12u32;
        let crash_at = 5; // read call #5 panics: 4 blocks delivered before
        let mesh = ChannelMesh::new(1, 64);
        let storage = Arc::new(MemFs::new());
        // Message-only: arrival order equals production order, so the
        // recovered stream can be asserted block-for-block.
        let t = tuning(PreserveMode::Preserve, false);
        let plan = ChaosPlan::new().with(
            ChaosEntity::Analysis(Rank(0)),
            crash_at,
            ChaosFault::CrashApp,
        );
        let scope = Arc::new(plan.scope(ChaosEntity::Analysis(Rank(0))));
        let mut cons = Consumer::spawn(
            Rank(0),
            t,
            1,
            mesh.take_receiver(Rank(0)).unwrap(),
            storage.clone(),
        );
        let recovery = cons.recovery(Some(scope));

        let mut prod = Producer::spawn(Rank(0), t, mesh.sender(), storage.clone());
        let writer = prod.writer(4096);
        let feeder = std::thread::spawn(move || {
            for i in 0..n_blocks {
                let id = BlockId::new(Rank(0), StepId(0), i);
                writer.write(Block::from_payload(
                    Rank(0),
                    StepId(0),
                    i,
                    n_blocks,
                    GlobalPos::default(),
                    deterministic_payload(id, 512),
                ));
            }
            writer.finish();
        });

        // Restart supervisor: run the consume closure, and on a panic
        // replay the backlog and try again with a fresh reader.
        let mut restarts = 0;
        let got = loop {
            let reader = recovery.fresh_reader();
            let run = catch_unwind(AssertUnwindSafe(|| {
                reader.iter().map(|b| b.id()).collect::<Vec<_>>()
            }));
            drop(reader);
            match run {
                Ok(ids) => break ids,
                Err(_) => {
                    restarts += 1;
                    let replayed = recovery
                        .replay_from(storage.as_ref(), std::time::Duration::from_secs(5))
                        .expect("replay backlog");
                    assert_eq!(replayed, (crash_at - 1) as usize);
                }
            }
        };
        feeder.join().unwrap();
        prod.join();
        cons.join();
        assert_eq!(restarts, 1);
        // The successful pass saw every block exactly once, in order.
        let idxs: Vec<u32> = got.iter().map(|id| id.idx).collect();
        assert_eq!(idxs, (0..n_blocks).collect::<Vec<_>>());
    }

    #[test]
    fn shared_full_sink_sees_analysis_spans() {
        use zipper_trace::{TraceMode, TraceSink};
        let sink = TraceSink::wall(TraceMode::Full);
        let mesh = ChannelMesh::new(1, 64);
        let storage: Arc<MemFs> = Arc::new(MemFs::new());
        let t = tuning(PreserveMode::NoPreserve, false);
        let mut cons = Consumer::spawn_traced(
            Rank(1),
            t,
            1,
            mesh.take_receiver(Rank(0)).unwrap(),
            storage.clone(),
            sink.clone(),
        );
        let reader = cons.reader();
        let mut prod = Producer::spawn_traced(Rank(0), t, mesh.sender(), storage, sink.clone());
        let w = prod.writer(256);
        for s in 0..3u64 {
            let id = BlockId::new(Rank(0), StepId(s), 0);
            w.write(Block::from_payload(
                Rank(0),
                StepId(s),
                0,
                1,
                GlobalPos::default(),
                deterministic_payload(id, 256),
            ));
        }
        w.finish();
        while reader.read().is_some() {}
        prod.join();
        let cm = cons.join();
        assert_eq!(cm.blocks_delivered, 3);
        let log = sink.snapshot();
        let app = log.lane_by_label("ana/q1/app").expect("analysis lane");
        let analysis: Vec<u64> = log
            .lane_spans(app)
            .iter()
            .filter(|s| s.kind == SpanKind::Analysis)
            .map(|s| s.step)
            .collect();
        // The gap before read k is attributed to the previously delivered
        // step; the first gap (reader setup) is attributed to step 0.
        assert_eq!(analysis, vec![0, 0, 1, 2]);
        assert!(log.lane_by_label("ana/q1/recv").is_some());
        assert!(log.lane_by_label("sim/p0/app").is_some());
    }
}
