//! # zipper-core
//!
//! The Zipper runtime system of §4, as a real multi-threaded library.
//!
//! Zipper sits *below* the simulation and analysis applications and *above*
//! storage/transport (Fig. 1). Each simulation rank gets a **producer
//! runtime module** (Fig. 8): a bounded producer buffer drained by a
//! *sender thread* (message channel to the consumers) and — when the
//! concurrent-transfer optimization is on — a *writer thread* that steals
//! blocks to the parallel file system whenever the buffer passes a
//! high-water mark (Algorithm 1). Each analysis rank gets a **consumer
//! runtime module** (Fig. 9): a *receiver thread* (splits mixed messages
//! into a data block plus on-disk block IDs), a *reader thread* (fetches
//! the on-disk blocks), and, in Preserve mode, an *output thread* that
//! stores network-delivered blocks so every block ends up on the PFS.
//!
//! The application-facing API is the paper's two calls:
//! [`ZipperWriter::write`] and [`ZipperReader::read`].
//!
//! In this reproduction "ranks" are OS threads inside one process and the
//! "HPC network" is a channel mesh (optionally bandwidth-throttled); see
//! DESIGN.md for why this preserves the runtime's behaviour.

pub mod assemble;
pub mod buffer;
pub mod consumer;
pub mod fault;
pub mod metrics;
pub mod producer;
pub mod transport;
pub mod transport_tcp;

pub use assemble::{Slab, StepAssembler};
pub use buffer::BlockQueue;
pub use consumer::{Consumer, ConsumerRecovery, SharedConsumerPolicy, ZipperReader};
pub use fault::{ChaosSender, FailingTransport, FaultKind, FaultPlan};
pub use metrics::{ConsumerMetrics, ProducerMetrics};
pub use producer::{Producer, SharedProducerPolicy, ZipperWriter};
pub use transport::{
    ChannelMesh, MeshReceiver, MeshSender, RetryingSender, TracedSender, Wire, WireItem, WireSender,
};
pub use transport_tcp::{
    decode_wire, encode_wire, listen_consumers, listen_consumers_traced, TcpSender, MAX_FRAME,
};
