//! Reassembling per-(rank, step) slabs from fine-grain blocks.
//!
//! Zipper deliberately delivers fine-grain blocks in *arrival order* —
//! any interleaving of sources, steps, and channels. Analyses that work
//! block-locally (moments, variance) fold them directly; analyses that
//! need a rank's whole step slab (e.g. MSD over an atom array) use a
//! [`StepAssembler`] to regroup blocks, completing slabs as their last
//! block lands. Each block's header carries everything needed (§4.2):
//! source rank, step, index, and per-step block count.

use std::collections::HashMap;
use zipper_trace::{LaneRecorder, SpanKind};
use zipper_types::{Block, Rank, StepId};

/// A fully reassembled per-(rank, step) output slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slab {
    pub src: Rank,
    pub step: StepId,
    /// Concatenated payloads of all blocks, in block-index order.
    pub bytes: Vec<u8>,
}

/// Incremental slab reassembly from out-of-order fine-grain blocks.
#[derive(Default)]
pub struct StepAssembler {
    partial: HashMap<(Rank, StepId), Vec<Option<Block>>>,
    rec: Option<LaneRecorder>,
}

impl StepAssembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// An assembler that records each slab concatenation as a step-marked
    /// `Analysis` span on `rec`'s lane (flushed when the assembler drops).
    pub fn with_recorder(rec: LaneRecorder) -> Self {
        StepAssembler {
            partial: HashMap::new(),
            rec: Some(rec),
        }
    }

    /// Offer one block; returns the completed slab if this was the last
    /// missing piece of its (rank, step).
    ///
    /// Panics on inconsistent metadata: duplicate block delivery, an index
    /// outside the advertised per-step count, or disagreeing counts for
    /// the same (rank, step) — all of which indicate a corrupted stream
    /// rather than recoverable conditions.
    pub fn offer(&mut self, block: Block) -> Option<Slab> {
        let key = (block.id().src, block.id().step);
        let n = block.header.blocks_in_step as usize;
        assert!(n > 0, "block {key:?} advertises zero blocks per step");
        let slots = self.partial.entry(key).or_insert_with(|| vec![None; n]);
        assert_eq!(
            slots.len(),
            n,
            "blocks of {key:?} disagree on blocks_in_step"
        );
        let idx = block.id().idx as usize;
        assert!(idx < n, "block index {idx} outside 0..{n} for {key:?}");
        assert!(slots[idx].is_none(), "duplicate block {:?}", block.id());
        slots[idx] = Some(block);

        if slots.iter().all(Option::is_some) {
            let t0 = self.rec.as_ref().map(|r| r.now());
            let slots = self.partial.remove(&key).expect("entry exists");
            let mut bytes =
                Vec::with_capacity(slots.iter().flatten().map(|b| b.payload.len()).sum());
            for b in slots.into_iter().flatten() {
                bytes.extend_from_slice(&b.payload);
            }
            if let (Some(rec), Some(t0)) = (self.rec.as_mut(), t0) {
                let t1 = rec.now();
                rec.record_step(SpanKind::Analysis, t0, t1, key.1 .0);
            }
            Some(Slab {
                src: key.0,
                step: key.1,
                bytes,
            })
        } else {
            None
        }
    }

    /// Number of slabs currently awaiting more blocks.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }

    /// True when no partially assembled slabs remain — call at end of
    /// stream to verify nothing was lost.
    pub fn is_drained(&self) -> bool {
        self.partial.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use zipper_types::GlobalPos;

    fn block(src: u32, step: u64, idx: u32, n: u32, fill: u8) -> Block {
        Block::from_payload(
            Rank(src),
            StepId(step),
            idx,
            n,
            GlobalPos::default(),
            Bytes::from(vec![fill; 4]),
        )
    }

    #[test]
    fn completes_in_index_order_regardless_of_arrival_order() {
        let mut asm = StepAssembler::new();
        assert!(asm.offer(block(1, 0, 2, 3, 2)).is_none());
        assert!(asm.offer(block(1, 0, 0, 3, 0)).is_none());
        assert_eq!(asm.pending(), 1);
        let slab = asm.offer(block(1, 0, 1, 3, 1)).expect("complete");
        assert_eq!(slab.src, Rank(1));
        assert_eq!(slab.step, StepId(0));
        assert_eq!(slab.bytes, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        assert!(asm.is_drained());
    }

    #[test]
    fn interleaved_ranks_and_steps_do_not_mix() {
        let mut asm = StepAssembler::new();
        assert!(asm.offer(block(1, 0, 0, 2, 10)).is_none());
        assert!(asm.offer(block(2, 0, 0, 2, 20)).is_none());
        assert!(asm.offer(block(1, 1, 0, 2, 11)).is_none());
        assert_eq!(asm.pending(), 3);
        let s = asm.offer(block(2, 0, 1, 2, 21)).expect("rank 2 completes");
        assert_eq!(s.src, Rank(2));
        assert_eq!(s.bytes, [20, 20, 20, 20, 21, 21, 21, 21]);
        assert_eq!(asm.pending(), 2);
    }

    #[test]
    fn single_block_step_completes_immediately() {
        let mut asm = StepAssembler::new();
        let s = asm.offer(block(0, 5, 0, 1, 9)).expect("immediate");
        assert_eq!(s.step, StepId(5));
    }

    #[test]
    fn recorder_marks_completed_slabs() {
        use zipper_trace::{TraceMode, TraceSink};
        let (sink, _clock) = TraceSink::virtual_clock(TraceMode::Full);
        let mut asm = StepAssembler::with_recorder(sink.recorder("ana/q0/asm"));
        assert!(asm.offer(block(0, 4, 0, 2, 1)).is_none());
        assert!(asm.offer(block(0, 4, 1, 2, 2)).is_some());
        assert!(asm.offer(block(0, 7, 0, 1, 3)).is_some());
        drop(asm); // flush
        let log = sink.snapshot();
        let lane = log.lane_by_label("ana/q0/asm").expect("assembler lane");
        let steps: Vec<u64> = log.lane_spans(lane).iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![4, 7]);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_delivery_is_a_hard_error() {
        let mut asm = StepAssembler::new();
        let _ = asm.offer(block(0, 0, 0, 2, 1));
        let _ = asm.offer(block(0, 0, 0, 2, 1));
    }

    #[test]
    #[should_panic(expected = "disagree on blocks_in_step")]
    fn inconsistent_counts_are_a_hard_error() {
        let mut asm = StepAssembler::new();
        let _ = asm.offer(block(0, 0, 0, 3, 1));
        let _ = asm.offer(block(0, 0, 1, 2, 1));
    }
}
