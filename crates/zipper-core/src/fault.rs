//! Failure injection for the message channel — the network-side sibling of
//! `zipper-pfs`'s `FailingFs`.
//!
//! [`FailingTransport`] wraps a [`MeshSender`] and misbehaves on a
//! deterministic schedule (every N-th wire), which lets the
//! failure-injection tests drive the fail-soft layer without any real
//! network faults: transient send errors exercise the retry/backoff path,
//! dropped or corrupted wires exercise the consumer's in-band fault
//! handling, and swallowed EOS markers exercise the EOS watchdog.

use crate::transport::{MeshSender, Wire, WireSender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use zipper_types::{Error, Rank, Result, RuntimeError};

/// What the transport does on a scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a transient [`Error::Runtime`] without delivering the wire.
    /// A retrying sender re-sends the same wire, so with retries enabled
    /// no data is lost.
    FailSend,
    /// Silently drop the wire: it is reported as sent but never arrives
    /// (a lost frame).
    DropWire,
    /// Replace the wire with an in-band [`RuntimeError::Transport`] fault,
    /// as a TCP reader does when it decodes a corrupt frame.
    CorruptWire,
    /// Deliver the wire after an extra delay (a slow or congested link).
    DelayWire,
    /// Swallow every end-of-stream marker — the lost-EOS scenario the
    /// consumer's watchdog exists for. Data wires pass untouched.
    DropEos,
}

/// A deterministic fault schedule: `kind` strikes on every `every`-th
/// wire (1-based count; `every = 1` means every wire).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub every: u64,
    /// Extra latency for [`FaultKind::DelayWire`]; ignored otherwise.
    pub delay: Duration,
}

impl FaultPlan {
    pub fn every(kind: FaultKind, every: u64) -> Self {
        assert!(every >= 1, "fault period must be at least 1");
        FaultPlan {
            kind,
            every,
            delay: Duration::from_millis(5),
        }
    }
}

/// A [`WireSender`] that injects faults per a [`FaultPlan`].
pub struct FailingTransport {
    inner: MeshSender,
    plan: FaultPlan,
    sent: AtomicU64,
    injected: AtomicU64,
}

impl FailingTransport {
    pub fn new(inner: MeshSender, plan: FaultPlan) -> Self {
        FailingTransport {
            inner,
            plan,
            sent: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn strikes(&self) -> bool {
        let n = self.sent.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.plan.every)
    }
}

impl WireSender for FailingTransport {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        if self.plan.kind == FaultKind::DropEos {
            if matches!(wire, Wire::Eos(_)) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            return self.inner.send(to, wire);
        }
        if !self.strikes() {
            return self.inner.send(to, wire);
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        match self.plan.kind {
            FaultKind::FailSend => Err(Error::Runtime(RuntimeError::Transport {
                rank: to,
                detail: "injected transient send failure".into(),
            })),
            FaultKind::DropWire => Ok(()),
            FaultKind::CorruptWire => self.inner.send_fault(
                to,
                RuntimeError::Transport {
                    rank: to,
                    detail: "injected corrupt wire".into(),
                },
            ),
            FaultKind::DelayWire => {
                std::thread::sleep(self.plan.delay);
                self.inner.send(to, wire)
            }
            FaultKind::DropEos => unreachable!("handled above"),
        }
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelMesh, MeshReceiver, RetryingSender};
    use zipper_types::RetryPolicy;

    fn mesh_pair() -> (MeshSender, MeshReceiver) {
        let mesh = ChannelMesh::new(1, 16);
        let r = mesh.take_receiver(Rank(0)).unwrap();
        (mesh.sender(), r)
    }

    #[test]
    fn fail_send_every_other_wire() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::FailSend, 2));
        f.send(Rank(0), Wire::Eos(Rank(0))).unwrap();
        assert!(f.send(Rank(0), Wire::Eos(Rank(1))).is_err());
        f.send(Rank(0), Wire::Eos(Rank(2))).unwrap();
        assert_eq!(f.injected(), 1);
        drop(f);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 2, "failed wire was not delivered");
    }

    #[test]
    fn corrupt_wire_surfaces_in_band_fault() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::CorruptWire, 1));
        f.send(Rank(0), Wire::Eos(Rank(0))).unwrap();
        assert!(matches!(
            r.recv(),
            Err(Error::Runtime(RuntimeError::Transport { .. }))
        ));
    }

    #[test]
    fn drop_eos_passes_data_and_swallows_markers() {
        use zipper_types::block::deterministic_payload;
        use zipper_types::{Block, BlockId, GlobalPos, MixedMessage, StepId};
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::DropEos, 1));
        let id = BlockId::new(Rank(0), StepId(0), 0);
        let block = Block::from_payload(
            Rank(0),
            StepId(0),
            0,
            1,
            GlobalPos::default(),
            deterministic_payload(id, 32),
        );
        f.send(Rank(0), Wire::Msg(MixedMessage::data_only(block)))
            .unwrap();
        f.send(Rank(0), Wire::Eos(Rank(0))).unwrap();
        assert_eq!(f.injected(), 1);
        drop(f);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], Wire::Msg(_)));
    }

    #[test]
    fn retrying_sender_rides_over_injected_failures() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::FailSend, 2));
        let retrying = RetryingSender::new(
            f,
            RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_micros(400),
                jitter: 0.0,
            },
        );
        for i in 0..6 {
            retrying.send(Rank(0), Wire::Eos(Rank(i))).unwrap();
        }
        assert!(retrying.retries() > 0);
        drop(retrying);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 6, "every wire eventually delivered");
    }
}
