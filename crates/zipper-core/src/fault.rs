//! Failure injection for the message channel — the network-side sibling of
//! `zipper-pfs`'s `FailingFs` and `ChaosFs`.
//!
//! Two injectors live here:
//!
//! * [`FailingTransport`] wraps a [`MeshSender`] and misbehaves on a
//!   periodic schedule (every N-th wire, counted by the shared
//!   [`zipper_types::FaultSchedule`]), which lets the failure-injection
//!   tests drive the fail-soft layer without any real network faults.
//! * [`ChaosSender`] wraps a [`MeshSender`] and interprets one sender
//!   entity's [`ChaosScope`] of a scripted `ChaosPlan`: exact wire
//!   ordinals misbehave, and the same plan drives the DES sender procs in
//!   virtual time, so transport chaos is conformance-testable across
//!   substrates.

// Threaded substrate: fault injection paces real threads with the wall clock —
// the DES twin injects the same ChaosPlan at virtual timestamps.
#![allow(clippy::disallowed_methods)]
use crate::transport::{MeshSender, Wire, WireSender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use zipper_policy::Channel;
use zipper_types::{ChaosFault, ChaosScope, Error, Rank, Result, RuntimeError};

/// What the transport does on a scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a transient [`Error::Runtime`] without delivering the wire.
    /// A retrying sender re-sends the same wire, so with retries enabled
    /// no data is lost.
    FailSend,
    /// Silently drop the wire: it is reported as sent but never arrives
    /// (a lost frame).
    DropWire,
    /// Replace the wire with an in-band [`RuntimeError::Transport`] fault,
    /// as a TCP reader does when it decodes a corrupt frame.
    CorruptWire,
    /// Deliver the wire after an extra delay (a slow or congested link).
    DelayWire,
    /// Swallow every end-of-stream marker — the lost-EOS scenario the
    /// consumer's watchdog exists for. Data wires pass untouched.
    DropEos,
}

/// A deterministic fault schedule: `kind` strikes on every `every`-th
/// wire (1-based count; `every = 1` means every wire).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    pub kind: FaultKind,
    pub every: u64,
    /// Extra latency for [`FaultKind::DelayWire`]; ignored otherwise.
    pub delay: Duration,
}

impl FaultPlan {
    pub fn every(kind: FaultKind, every: u64) -> Self {
        assert!(every >= 1, "fault period must be at least 1");
        FaultPlan {
            kind,
            every,
            delay: Duration::from_millis(5),
        }
    }
}

/// A [`WireSender`] that injects faults per a [`FaultPlan`]. The every-N-th
/// counting lives in the shared [`zipper_types::FaultSchedule`] — the same
/// type `zipper-pfs`'s `FailingFs` counts with.
pub struct FailingTransport {
    inner: MeshSender,
    plan: FaultPlan,
    schedule: zipper_types::FaultSchedule,
    injected: AtomicU64,
}

impl FailingTransport {
    pub fn new(inner: MeshSender, plan: FaultPlan) -> Self {
        FailingTransport {
            schedule: zipper_types::FaultSchedule::every(plan.every),
            inner,
            plan,
            injected: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn strikes(&self) -> bool {
        self.schedule.strike().is_some()
    }
}

impl WireSender for FailingTransport {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        if self.plan.kind == FaultKind::DropEos {
            if matches!(wire, Wire::Eos(_, Channel::Net)) {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            return self.inner.send(to, wire);
        }
        if !self.strikes() {
            return self.inner.send(to, wire);
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        match self.plan.kind {
            FaultKind::FailSend => Err(Error::Runtime(RuntimeError::Transport {
                rank: to,
                detail: "injected transient send failure".into(),
            })),
            FaultKind::DropWire => Ok(()),
            FaultKind::CorruptWire => self.inner.send_fault(
                to,
                RuntimeError::Transport {
                    rank: to,
                    detail: "injected corrupt wire".into(),
                },
            ),
            FaultKind::DelayWire => {
                std::thread::sleep(self.plan.delay);
                self.inner.send(to, wire)
            }
            FaultKind::DropEos => unreachable!("handled above"),
        }
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        self.inner.send_fault(to, fault)
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

/// A [`WireSender`] interpreting one sender entity's [`ChaosScope`].
///
/// Ordinals follow the convention of `zipper_types::fault`: one 1-based
/// stream over the wires this sender actually attempts — data-carrying
/// `Msg` wires and message-channel `Eos` wires. Disk-only ID flushes and
/// the file channel's `Eos` markers are *not* counted (the DES sender
/// proc counts neither: disk IDs and the file EOS flow from its writer
/// proc), and neither are sends the caller skipped for a dead destination
/// (the skip happens before this wrapper is reached on both substrates).
/// The wrapper is transport-generic: the same scripted ordinals drive the
/// in-process mesh and the framed-TCP sender.
///
/// Fault interpretation on a scripted ordinal:
///
/// * `FailSend` — return a transient [`RuntimeError::Transport`]; the
///   wire is not delivered (an unretried caller marks the destination
///   dead).
/// * `DropWire` — report success without delivering (a lost frame).
/// * `CorruptWire` — deliver an in-band [`RuntimeError::Transport`]
///   instead of the wire.
/// * `DelayWire(d)` — deliver after an extra delay of `d`.
/// * `DropEos` — swallow the wire if it is an EOS marker (the lost-EOS
///   scenario); a data wire at that ordinal passes untouched.
///
/// Faults addressed to other entity kinds (`PfsWriteFail`, `CrashApp`,
/// `DetachSender`) pass the wire through untouched — they are interpreted
/// by the storage wrapper, the reader, and the spawn path respectively.
pub struct ChaosSender<S = MeshSender> {
    inner: S,
    scope: Arc<ChaosScope>,
    injected: AtomicU64,
}

impl<S: WireSender> ChaosSender<S> {
    /// Wrap `inner`, interpreting `scope`.
    pub fn new(inner: S, scope: Arc<ChaosScope>) -> Self {
        ChaosSender {
            inner,
            scope,
            injected: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl<S: WireSender> WireSender for ChaosSender<S> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        let counted = match &wire {
            Wire::Msg(m) => m.data.is_some(),
            Wire::Eos(_, ch) => *ch == Channel::Net,
        };
        if !counted {
            return self.inner.send(to, wire);
        }
        match self.scope.next() {
            None => self.inner.send(to, wire),
            Some(ChaosFault::FailSend) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(Error::Runtime(RuntimeError::Transport {
                    rank: to,
                    detail: format!("chaos: injected send failure on wire #{}", self.scope.ops()),
                }))
            }
            Some(ChaosFault::DropWire) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Some(ChaosFault::CorruptWire) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.inner.send_fault(
                    to,
                    RuntimeError::Transport {
                        rank: to,
                        detail: format!("chaos: injected corrupt wire #{}", self.scope.ops()),
                    },
                )
            }
            Some(ChaosFault::DelayWire(d)) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.send(to, wire)
            }
            Some(ChaosFault::DropEos) => {
                if matches!(wire, Wire::Eos(..)) {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    self.inner.send(to, wire)
                }
            }
            Some(ChaosFault::PfsWriteFail | ChaosFault::CrashApp | ChaosFault::DetachSender) => {
                self.inner.send(to, wire)
            }
        }
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        self.inner.send_fault(to, fault)
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelMesh, MeshReceiver, RetryingSender};
    use zipper_types::RetryPolicy;

    fn mesh_pair() -> (MeshSender, MeshReceiver) {
        let mesh = ChannelMesh::new(1, 16);
        let r = mesh.take_receiver(Rank(0)).unwrap();
        (mesh.sender(), r)
    }

    #[test]
    fn fail_send_every_other_wire() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::FailSend, 2));
        f.send(Rank(0), Wire::Eos(Rank(0), Channel::Net)).unwrap();
        assert!(f.send(Rank(0), Wire::Eos(Rank(1), Channel::Net)).is_err());
        f.send(Rank(0), Wire::Eos(Rank(2), Channel::Net)).unwrap();
        assert_eq!(f.injected(), 1);
        drop(f);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 2, "failed wire was not delivered");
    }

    #[test]
    fn corrupt_wire_surfaces_in_band_fault() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::CorruptWire, 1));
        f.send(Rank(0), Wire::Eos(Rank(0), Channel::Net)).unwrap();
        assert!(matches!(
            r.recv(),
            Err(Error::Runtime(RuntimeError::Transport { .. }))
        ));
    }

    #[test]
    fn drop_eos_passes_data_and_swallows_markers() {
        use zipper_types::block::deterministic_payload;
        use zipper_types::{Block, BlockId, GlobalPos, MixedMessage, StepId};
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::DropEos, 1));
        let id = BlockId::new(Rank(0), StepId(0), 0);
        let block = Block::from_payload(
            Rank(0),
            StepId(0),
            0,
            1,
            GlobalPos::default(),
            deterministic_payload(id, 32),
        );
        f.send(Rank(0), Wire::Msg(MixedMessage::data_only(block)))
            .unwrap();
        f.send(Rank(0), Wire::Eos(Rank(0), Channel::Net)).unwrap();
        assert_eq!(f.injected(), 1);
        drop(f);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], Wire::Msg(_)));
    }

    #[test]
    fn chaos_sender_strikes_exact_ordinals_and_skips_disk_only_flushes() {
        use zipper_types::block::deterministic_payload;
        use zipper_types::{
            Block, BlockId, ChaosEntity, ChaosPlan, GlobalPos, MixedMessage, StepId,
        };
        let plan = ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(ChaosEntity::Sender(Rank(0)), 4, ChaosFault::DropEos);
        let (s, r) = mesh_pair();
        let c = ChaosSender::new(s, Arc::new(plan.scope(ChaosEntity::Sender(Rank(0)))));
        let data = |idx: u32| {
            let id = BlockId::new(Rank(0), StepId(0), idx);
            Wire::Msg(MixedMessage::data_only(Block::from_payload(
                Rank(0),
                StepId(0),
                idx,
                4,
                GlobalPos::default(),
                deterministic_payload(id, 32),
            )))
        };
        c.send(Rank(0), data(0)).unwrap(); // wire 1: clean
                                           // Disk-only ID flushes do not advance the ordinal stream.
        let ids = vec![BlockId::new(Rank(0), StepId(0), 9)];
        c.send(Rank(0), Wire::Msg(MixedMessage::disk_only(ids)))
            .unwrap();
        c.send(Rank(0), data(1)).unwrap(); // wire 2: dropped
        c.send(Rank(0), data(2)).unwrap(); // wire 3: clean
        c.send(Rank(0), Wire::Eos(Rank(0), Channel::Net)).unwrap(); // wire 4: EOS swallowed
        assert_eq!(c.injected(), 2);
        drop(c);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        // Delivered: wire 1, the uncounted ID flush, wire 3. No EOS.
        assert_eq!(got.len(), 3);
        assert!(!got.iter().any(|w| matches!(w, Wire::Eos(..))));
    }

    #[test]
    fn chaos_sender_fail_send_and_corrupt_wire_surface_faults() {
        use zipper_types::{ChaosEntity, ChaosPlan};
        let plan = ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::FailSend)
            .with(ChaosEntity::Sender(Rank(1)), 2, ChaosFault::CorruptWire);
        let (s, r) = mesh_pair();
        let c = ChaosSender::new(s, Arc::new(plan.scope(ChaosEntity::Sender(Rank(1)))));
        let err = c
            .send(Rank(0), Wire::Eos(Rank(1), Channel::Net))
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Runtime(RuntimeError::Transport { .. })
        ));
        c.send(Rank(0), Wire::Eos(Rank(1), Channel::Net)).unwrap(); // corrupt: in-band
        c.send(Rank(0), Wire::Eos(Rank(1), Channel::Net)).unwrap(); // wire 3: clean
        drop(c);
        assert!(matches!(
            r.recv(),
            Err(Error::Runtime(RuntimeError::Transport { .. }))
        ));
        assert!(matches!(r.recv(), Ok(Wire::Eos(..))));
    }

    #[test]
    fn retrying_sender_rides_over_injected_failures() {
        let (s, r) = mesh_pair();
        let f = FailingTransport::new(s, FaultPlan::every(FaultKind::FailSend, 2));
        let retrying = RetryingSender::new(
            f,
            RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_micros(400),
                jitter: 0.0,
            },
        );
        for i in 0..6 {
            retrying
                .send(Rank(0), Wire::Eos(Rank(i), Channel::Net))
                .unwrap();
        }
        assert!(retrying.retries() > 0);
        drop(retrying);
        let got: Vec<_> = std::iter::from_fn(|| r.recv().ok()).collect();
        assert_eq!(got.len(), 6, "every wire eventually delivered");
    }
}
