//! The message channel between producer and consumer ranks: a mesh of
//! bounded channels, optionally throttled to a shared aggregate bandwidth
//! so a laptop run exhibits the finite-network effects the paper measures.

// Threaded substrate: real channel timeouts and bandwidth pacing are this
// module's job — the DES twin models the mesh in virtual time. Decisions stay
// in zipper-policy, which this lint keeps wall-clock-free.
#![allow(clippy::disallowed_methods)]
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zipper_policy::Channel;
use zipper_trace::{CounterId, GaugeId, HistogramId, LaneRecorder, SpanKind, Telemetry, TraceSink};
use zipper_types::{Error, MixedMessage, Rank, Result, RetryPolicy, RuntimeError};

/// What travels on the wire: mixed messages, or a per-channel
/// end-of-stream marker from one producer rank. In `concurrent_transfer`
/// mode a producer announces its message channel (sender drained) and
/// its file channel (writer retired, trailing disk IDs flushed)
/// *separately* — a consumer completes a producer only once every active
/// channel's marker arrived, which keeps a swallowed marker on either
/// channel distinguishable (the `DropEos` chaos scenarios).
#[derive(Clone, Debug)]
pub enum Wire {
    Msg(MixedMessage),
    Eos(Rank, Channel),
}

/// One slot in a consumer's inbox: a decoded wire, or a typed transport
/// fault forwarded in-band (e.g. a TCP reader that hit a corrupt frame).
/// Delivering faults through the same channel keeps them ordered with the
/// data stream and guarantees the consumer sees them instead of hanging.
pub type WireItem = std::result::Result<Wire, RuntimeError>;

impl Wire {
    pub(crate) fn wire_bytes(&self) -> u64 {
        match self {
            Wire::Msg(m) => m.wire_bytes(),
            Wire::Eos(..) => 16,
        }
    }
}

/// Shared-bandwidth throttle (single drain, identical to the PFS throttle:
/// concurrent senders queue on one aggregate-bandwidth timeline).
struct Throttle {
    bytes_per_sec: f64,
    latency: Duration,
    free_at: Mutex<Instant>,
}

impl Throttle {
    /// Charge `bytes` against the shared-bandwidth timeline, sleeping
    /// until the transfer would have drained. Returns the time actually
    /// slept — the sender's `XmitWait`-style stall, fed to telemetry.
    fn charge(&self, bytes: u64) -> Duration {
        let xfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let now = Instant::now();
        let finish = {
            let mut free = self.free_at.lock();
            let start = (*free).max(now);
            let finish = start + xfer;
            *free = finish;
            finish
        };
        let deadline = finish + self.latency;
        let wait = deadline.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        wait
    }
}

/// A P→Q channel mesh: every producer holds a [`MeshSender`] that can reach
/// any consumer; every consumer holds the [`MeshReceiver`] for its own rank.
pub struct ChannelMesh {
    txs: Vec<Sender<WireItem>>,
    rxs: Mutex<Vec<Option<Receiver<WireItem>>>>,
    throttle: Option<Arc<Throttle>>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
    backpressure_ns: Arc<AtomicU64>,
    telemetry: Telemetry,
}

impl ChannelMesh {
    /// Create a mesh toward `consumers` ranks, each with a bounded inbox of
    /// `inbox_capacity` messages (backpressure: senders block on a full
    /// inbox exactly like a congested NIC).
    pub fn new(consumers: usize, inbox_capacity: usize) -> Self {
        assert!(consumers > 0, "need at least one consumer");
        assert!(inbox_capacity > 0, "inbox capacity must be positive");
        let mut txs = Vec::with_capacity(consumers);
        let mut rxs = Vec::with_capacity(consumers);
        for _ in 0..consumers {
            let (tx, rx) = bounded(inbox_capacity);
            txs.push(tx);
            rxs.push(Some(rx));
        }
        ChannelMesh {
            txs,
            rxs: Mutex::new(rxs),
            throttle: None,
            bytes_sent: Arc::new(AtomicU64::new(0)),
            messages_sent: Arc::new(AtomicU64::new(0)),
            backpressure_ns: Arc::new(AtomicU64::new(0)),
            telemetry: Telemetry::off(),
        }
    }

    /// Publish send/stall counters and the in-flight inbox-depth gauge
    /// into `telemetry`; endpoints created afterwards carry the handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Impose a shared aggregate bandwidth (bytes/s) and per-message
    /// latency on every send.
    pub fn with_throttle(mut self, bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.throttle = Some(Arc::new(Throttle {
            bytes_per_sec,
            latency,
            free_at: Mutex::new(Instant::now()),
        }));
        self
    }

    /// Number of consumer endpoints.
    pub fn consumers(&self) -> usize {
        self.txs.len()
    }

    /// A sender handle for one producer rank (cheap to clone internally;
    /// one per producer thread).
    pub fn sender(&self) -> MeshSender {
        MeshSender {
            txs: self.txs.clone(),
            throttle: self.throttle.clone(),
            bytes_sent: self.bytes_sent.clone(),
            messages_sent: self.messages_sent.clone(),
            backpressure_ns: self.backpressure_ns.clone(),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Take the receiver endpoint for consumer `rank`. Each rank's receiver
    /// can be taken exactly once; a second take (or an out-of-range rank)
    /// is a configuration error, reported instead of panicking.
    pub fn take_receiver(&self, rank: Rank) -> Result<MeshReceiver> {
        let mut rxs = self.rxs.lock();
        let slot = rxs
            .get_mut(rank.idx())
            .ok_or_else(|| Error::Config(format!("consumer {rank:?} out of range")))?;
        let rx = slot
            .take()
            .ok_or_else(|| Error::Config(format!("receiver for {rank:?} already taken")))?;
        Ok(MeshReceiver {
            rx,
            telemetry: self.telemetry.clone(),
        })
    }

    /// Total payload bytes pushed through the mesh.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total messages pushed through the mesh.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Cumulative time senders spent blocked on full consumer inboxes —
    /// distinct from the bandwidth throttle's transfer time.
    pub fn backpressure(&self) -> Duration {
        Duration::from_nanos(self.backpressure_ns.load(Ordering::Relaxed))
    }
}

/// Anything a producer's sender thread can ship wires through: the
/// in-process [`MeshSender`], or a cross-process transport such as
/// [`crate::transport_tcp::TcpSender`].
pub trait WireSender: Send {
    /// Send one wire to consumer `to`.
    fn send(&self, to: Rank, wire: Wire) -> Result<()>;
    /// Number of consumer endpoints reachable.
    fn consumers(&self) -> usize;

    /// Forward a typed runtime fault in-band to consumer `to`, ordered
    /// with the data stream — what a chaos script's `CorruptWire` turns
    /// into. The in-process mesh ships the typed fault itself; a framed
    /// transport realizes it at the wire level (a corrupt frame body the
    /// reader reports in-band). Adapters forward to their inner sender.
    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()>;

    /// Announce `channel`'s end-of-stream from producer `rank` to the
    /// given consumers.
    ///
    /// Pure mechanism: *which* consumers must hear the announcement is a
    /// policy decision ([`zipper_policy::ProducerPolicy::announce_eos`]),
    /// not the transport's. Every target is attempted even when an earlier
    /// one fails — a dead consumer must not starve the remaining ones of
    /// the EOS they are waiting on. Failures are aggregated into a single
    /// error.
    fn send_eos(&self, rank: Rank, channel: Channel, targets: &[Rank]) -> Result<()> {
        let mut failures = Vec::new();
        for &q in targets {
            if let Err(e) = self.send(q, Wire::Eos(rank, channel)) {
                failures.push(e);
            }
        }
        match failures.len() {
            0 => Ok(()),
            1 => Err(failures.remove(0)),
            _ => Err(Error::Aggregate(failures)),
        }
    }
}

/// Producer-side endpoint: sends wires to any consumer rank.
pub struct MeshSender {
    txs: Vec<Sender<WireItem>>,
    throttle: Option<Arc<Throttle>>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
    backpressure_ns: Arc<AtomicU64>,
    telemetry: Telemetry,
}

impl WireSender for MeshSender {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        MeshSender::send(self, to, wire)
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        MeshSender::send_fault(self, to, fault)
    }

    fn consumers(&self) -> usize {
        self.txs.len()
    }
}

impl MeshSender {
    /// Send one wire to consumer `to`, blocking on inbox backpressure and
    /// then the bandwidth throttle.
    ///
    /// Order matters: the wire is enqueued *first* and the shared-bandwidth
    /// timeline is charged only once the send succeeded. Charging up front
    /// meant a failed send still reserved bandwidth for every other sender,
    /// and a full inbox delayed twice (throttle sleep, then blocking send).
    /// Inbox-blocked time is recorded separately as backpressure.
    pub fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        use crossbeam::channel::TrySendError;
        let bytes = wire.wire_bytes();
        let tx = self
            .txs
            .get(to.idx())
            .ok_or(Error::Disconnected("unknown consumer rank"))?;
        match tx.try_send(Ok(wire)) {
            Ok(()) => {}
            Err(TrySendError::Full(item)) => {
                let t0 = Instant::now();
                tx.send(item)
                    .map_err(|_| Error::Disconnected("consumer inbox closed"))?;
                let waited = t0.elapsed();
                self.backpressure_ns
                    .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
                self.telemetry
                    .add_time(CounterId::NetBackpressureNs, waited);
                self.telemetry
                    .observe(HistogramId::StallNs, waited.as_nanos() as u64);
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(Error::Disconnected("consumer inbox closed"));
            }
        }
        self.telemetry.gauge_add(GaugeId::InboxDepth, 1);
        if let Some(t) = &self.throttle {
            let waited = t.charge(bytes);
            self.telemetry.add_time(CounterId::ThrottleStallNs, waited);
        }
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.telemetry.add(CounterId::NetBytes, bytes);
        self.telemetry.add(CounterId::NetMessages, 1);
        self.telemetry.observe(HistogramId::SendBytes, bytes);
        Ok(())
    }

    /// Forward a typed runtime fault in-band to consumer `to`, so it is
    /// ordered with the data stream. Best-effort: a full inbox blocks, a
    /// disconnected one reports.
    pub fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        self.txs
            .get(to.idx())
            .ok_or(Error::Disconnected("unknown consumer rank"))?
            .send(Err(fault))
            .map_err(|_| Error::Disconnected("consumer inbox closed"))?;
        self.telemetry.gauge_add(GaugeId::InboxDepth, 1);
        Ok(())
    }

    /// Announce `channel`'s end-of-stream from producer `rank` to
    /// `targets`, attempting all of them (see [`WireSender::send_eos`]).
    pub fn send_eos(&self, rank: Rank, channel: Channel, targets: &[Rank]) -> Result<()> {
        WireSender::send_eos(self, rank, channel, targets)
    }

    /// Number of consumer endpoints.
    pub fn consumers(&self) -> usize {
        self.txs.len()
    }

    /// Cumulative time this endpoint's clones spent blocked on full
    /// consumer inboxes.
    pub fn backpressure(&self) -> Duration {
        Duration::from_nanos(self.backpressure_ns.load(Ordering::Relaxed))
    }
}

impl Clone for MeshSender {
    fn clone(&self) -> Self {
        MeshSender {
            txs: self.txs.clone(),
            throttle: self.throttle.clone(),
            bytes_sent: self.bytes_sent.clone(),
            messages_sent: self.messages_sent.clone(),
            backpressure_ns: self.backpressure_ns.clone(),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl WireSender for Box<dyn WireSender> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        (**self).send(to, wire)
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        (**self).send_fault(to, fault)
    }

    fn consumers(&self) -> usize {
        (**self).consumers()
    }
}

/// A [`WireSender`] adapter that records every outgoing wire as a `Send`
/// span on a dedicated network lane (e.g. `net/p0`). The workflow driver
/// wraps each producer's mesh endpoint with one of these in full-trace
/// mode, which makes wire time its own row on the rendered timeline —
/// distinct from the sender *thread*'s lane, whose `Send` spans also
/// include routing and pending-ID bookkeeping.
pub struct TracedSender<S> {
    inner: S,
    rec: Mutex<LaneRecorder>,
}

impl<S: WireSender> TracedSender<S> {
    /// Wrap `inner`, recording its sends on the sink lane `label`.
    pub fn new(inner: S, sink: &TraceSink, label: impl Into<String>) -> Self {
        TracedSender {
            inner,
            rec: Mutex::new(sink.recorder(label)),
        }
    }
}

impl<S: WireSender> WireSender for TracedSender<S> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        self.rec
            .lock()
            .time(SpanKind::Send, || self.inner.send(to, wire))
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        self.inner.send_fault(to, fault)
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

/// A [`WireSender`] adapter that re-attempts failed sends under a bounded
/// [`RetryPolicy`], sleeping an exponentially-backed-off, jittered delay
/// between attempts. Each backoff is recorded as a [`SpanKind::Retry`]
/// span when a trace lane is attached, and the total retry count is shared
/// through an atomic so the workflow report can surface it.
pub struct RetryingSender<S> {
    inner: S,
    policy: RetryPolicy,
    retries: Arc<AtomicU64>,
    rec: Option<Mutex<LaneRecorder>>,
    telemetry: Telemetry,
}

impl<S: WireSender> RetryingSender<S> {
    pub fn new(inner: S, policy: RetryPolicy) -> Self {
        RetryingSender {
            inner,
            policy,
            retries: Arc::new(AtomicU64::new(0)),
            rec: None,
            telemetry: Telemetry::off(),
        }
    }

    /// Record backoff sleeps as `Retry` spans on the sink lane `label`
    /// and into the sink's stall-time telemetry.
    pub fn traced(mut self, sink: &TraceSink, label: impl Into<String>) -> Self {
        self.rec = Some(Mutex::new(sink.recorder(label)));
        self.telemetry = sink.telemetry().clone();
        self
    }

    /// Shared handle to the cumulative retry count.
    pub fn retry_counter(&self) -> Arc<AtomicU64> {
        self.retries.clone()
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn backoff(&self, attempt: u32, seed: u64) {
        let delay = self.policy.backoff(attempt, seed);
        self.telemetry.add_time(CounterId::RetrySleepNs, delay);
        let sleep = || {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        };
        match &self.rec {
            Some(rec) => {
                // Buffer like every other lane (merged at drop/flush):
                // eager flushing bypassed the lane-local buffers and broke
                // span ordering invariants in exported traces.
                rec.lock().time(SpanKind::Retry, sleep);
            }
            None => sleep(),
        }
    }
}

impl<S: WireSender> WireSender for RetryingSender<S> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        let mut attempt = 1u32;
        let mut faults: Vec<Error> = Vec::new();
        loop {
            match self.inner.send(to, wire.clone()) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    faults.push(e);
                    if !self.policy.should_retry(attempt) {
                        // Exhausted: surface the whole failure history, not
                        // just the last straw. A single-attempt policy keeps
                        // its one error plain.
                        return Err(if faults.len() == 1 {
                            faults.pop().expect("one fault")
                        } else {
                            Error::Aggregate(faults)
                        });
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff(attempt, u64::from(to.0));
                    attempt += 1;
                }
            }
        }
    }

    fn send_fault(&self, to: Rank, fault: RuntimeError) -> Result<()> {
        // Best-effort like the fault itself: no retry loop around an
        // intentionally-delivered failure.
        self.inner.send_fault(to, fault)
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

/// Consumer-side endpoint: receives wires for one rank.
pub struct MeshReceiver {
    rx: Receiver<WireItem>,
    telemetry: Telemetry,
}

impl MeshReceiver {
    /// Wrap a raw wire channel — used by alternative transports (TCP)
    /// whose reader threads decode frames into a channel.
    pub fn from_channel(rx: Receiver<WireItem>) -> Self {
        MeshReceiver {
            rx,
            telemetry: Telemetry::off(),
        }
    }

    /// Decrement the in-flight inbox-depth gauge as items are drained
    /// (paired with the sender-side increment).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Blocking receive; `Err(Error::Runtime(..))` is a typed fault the
    /// transport forwarded in-band, `Err(Error::Disconnected(..))` means
    /// every sender disconnected.
    pub fn recv(&self) -> Result<Wire> {
        let item = self
            .rx
            .recv()
            .map_err(|_| Error::Disconnected("all producers disconnected"))?;
        self.telemetry.gauge_add(GaugeId::InboxDepth, -1);
        item.map_err(Error::Runtime)
    }

    /// Blocking receive with a deadline; `Err(Error::Timeout(..))` means
    /// the window elapsed with no wire traffic at all — the EOS watchdog's
    /// trigger.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Wire> {
        match self.rx.recv_timeout(timeout) {
            Ok(item) => {
                self.telemetry.gauge_add(GaugeId::InboxDepth, -1);
                item.map_err(Error::Runtime)
            }
            Err(RecvTimeoutError::Timeout) => Err(Error::Timeout("wire receive")),
            Err(RecvTimeoutError::Disconnected) => {
                Err(Error::Disconnected("all producers disconnected"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipper_types::block::deterministic_payload;
    use zipper_types::{Block, BlockId, GlobalPos, StepId};

    fn msg(idx: u32, len: usize) -> MixedMessage {
        let id = BlockId::new(Rank(0), StepId(0), idx);
        MixedMessage::data_only(Block::from_payload(
            Rank(0),
            StepId(0),
            idx,
            8,
            GlobalPos::default(),
            deterministic_payload(id, len),
        ))
    }

    #[test]
    fn mesh_routes_to_the_right_consumer() {
        let mesh = ChannelMesh::new(2, 8);
        let s = mesh.sender();
        let r0 = mesh.take_receiver(Rank(0)).unwrap();
        let r1 = mesh.take_receiver(Rank(1)).unwrap();
        s.send(Rank(0), Wire::Msg(msg(10, 64))).unwrap();
        s.send(Rank(1), Wire::Msg(msg(11, 64))).unwrap();
        match r0.recv().unwrap() {
            Wire::Msg(m) => assert_eq!(m.data.unwrap().id().idx, 10),
            w => panic!("unexpected {w:?}"),
        }
        match r1.recv().unwrap() {
            Wire::Msg(m) => assert_eq!(m.data.unwrap().id().idx, 11),
            w => panic!("unexpected {w:?}"),
        }
        assert_eq!(mesh.messages_sent(), 2);
        assert!(mesh.bytes_sent() > 128);
    }

    #[test]
    fn eos_broadcast_reaches_everyone() {
        let mesh = ChannelMesh::new(3, 4);
        let s = mesh.sender();
        let rs: Vec<_> = (0..3)
            .map(|q| mesh.take_receiver(Rank(q)).unwrap())
            .collect();
        s.send_eos(Rank(5), Channel::Net, &[Rank(0), Rank(1), Rank(2)])
            .unwrap();
        for r in &rs {
            match r.recv().unwrap() {
                Wire::Eos(p, ch) => {
                    assert_eq!(p, Rank(5));
                    assert_eq!(ch, Channel::Net);
                }
                w => panic!("unexpected {w:?}"),
            }
        }
    }

    #[test]
    fn double_take_receiver_errors() {
        let mesh = ChannelMesh::new(1, 1);
        let _a = mesh.take_receiver(Rank(0)).unwrap();
        assert!(matches!(mesh.take_receiver(Rank(0)), Err(Error::Config(_))));
        assert!(matches!(mesh.take_receiver(Rank(9)), Err(Error::Config(_))));
    }

    #[test]
    fn throttle_slows_sends() {
        // 1 MB at 10 MB/s ⇒ ~100 ms.
        let mesh = ChannelMesh::new(1, 8).with_throttle(10e6, Duration::ZERO);
        let s = mesh.sender();
        let _r = mesh.take_receiver(Rank(0)).unwrap();
        let t0 = Instant::now();
        s.send(Rank(0), Wire::Msg(msg(0, 1_000_000))).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn failed_send_does_not_charge_bandwidth() {
        // 1 MB at 1 MB/s would sleep ~1 s if charged; a dead consumer
        // must fail fast instead.
        let mesh = ChannelMesh::new(1, 1).with_throttle(1e6, Duration::ZERO);
        let s = mesh.sender();
        drop(mesh.take_receiver(Rank(0)).unwrap());
        drop(mesh);
        let t0 = Instant::now();
        assert!(s.send(Rank(0), Wire::Msg(msg(0, 1_000_000))).is_err());
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "no charge on failure"
        );
        assert_eq!(s.backpressure(), Duration::ZERO);
    }

    #[test]
    fn full_inbox_wait_is_recorded_as_backpressure() {
        let mesh = ChannelMesh::new(1, 1);
        let s = mesh.sender();
        let r = mesh.take_receiver(Rank(0)).unwrap();
        s.send(Rank(0), Wire::Msg(msg(0, 64))).unwrap();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            r.recv().unwrap();
            r
        });
        // Inbox holds 1: this send blocks until the receiver drains it.
        s.send(Rank(0), Wire::Msg(msg(1, 64))).unwrap();
        assert!(
            s.backpressure() >= Duration::from_millis(40),
            "backpressure={:?}",
            s.backpressure()
        );
        assert_eq!(mesh.messages_sent(), 2);
        drop(h.join().unwrap());
    }

    #[test]
    fn send_eos_reaches_live_consumers_past_dead_ones() {
        let mesh = ChannelMesh::new(3, 4);
        let s = mesh.sender();
        drop(mesh.take_receiver(Rank(0)).unwrap()); // consumer 0 is dead
        let r1 = mesh.take_receiver(Rank(1)).unwrap();
        let r2 = mesh.take_receiver(Rank(2)).unwrap();
        drop(mesh); // release the mesh's own tx clones for rank 0
        let err = s
            .send_eos(Rank(7), Channel::Net, &[Rank(0), Rank(1), Rank(2)])
            .unwrap_err();
        assert!(matches!(err, Error::Disconnected(_)), "{err}");
        for r in [&r1, &r2] {
            match r.recv().unwrap() {
                Wire::Eos(p, _) => assert_eq!(p, Rank(7)),
                w => panic!("unexpected {w:?}"),
            }
        }
    }

    #[test]
    fn receiver_surfaces_in_band_faults_and_timeouts() {
        let (tx, rx) = bounded(4);
        let r = MeshReceiver::from_channel(rx);
        tx.send(Err(RuntimeError::Transport {
            rank: Rank(0),
            detail: "corrupt frame".into(),
        }))
        .unwrap();
        assert!(matches!(
            r.recv(),
            Err(Error::Runtime(RuntimeError::Transport { .. }))
        ));
        assert!(matches!(
            r.recv_timeout(Duration::from_millis(20)),
            Err(Error::Timeout(_))
        ));
        tx.send(Ok(Wire::Eos(Rank(1), Channel::Net))).unwrap();
        assert!(matches!(
            r.recv_timeout(Duration::from_millis(20)),
            Ok(Wire::Eos(Rank(1), Channel::Net))
        ));
    }

    #[test]
    fn retrying_sender_retries_transient_failures_and_records_spans() {
        use std::sync::atomic::AtomicU32;
        use zipper_trace::TraceMode;

        /// Fails the first `fail_first` sends, then succeeds.
        struct Flaky {
            fail_first: u32,
            calls: AtomicU32,
        }
        impl WireSender for Flaky {
            fn send(&self, _to: Rank, _wire: Wire) -> Result<()> {
                let n = self.calls.fetch_add(1, Ordering::Relaxed);
                if n < self.fail_first {
                    Err(Error::Disconnected("transient"))
                } else {
                    Ok(())
                }
            }
            fn send_fault(&self, _to: Rank, _fault: RuntimeError) -> Result<()> {
                Ok(())
            }
            fn consumers(&self) -> usize {
                1
            }
        }

        let (sink, clock) = TraceSink::virtual_clock(TraceMode::Full);
        let flaky = Flaky {
            fail_first: 2,
            calls: AtomicU32::new(0),
        };
        let retrying = RetryingSender::new(
            flaky,
            RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(4),
                jitter: 0.0,
            },
        )
        .traced(&sink, "net/retry");
        clock.advance(zipper_types::SimTime::from_millis(1));
        retrying
            .send(Rank(0), Wire::Eos(Rank(0), Channel::Net))
            .unwrap();
        assert_eq!(retrying.retries(), 2);
        drop(retrying);
        let log = sink.snapshot();
        let lane = log.lane_by_label("net/retry").expect("retry lane");
        let spans = log.lane_spans(lane);
        assert_eq!(spans.len(), 2, "one Retry span per backoff");
        assert!(spans.iter().all(|s| s.kind == SpanKind::Retry));
    }

    #[test]
    fn retrying_sender_gives_up_after_budget() {
        struct AlwaysDown;
        impl WireSender for AlwaysDown {
            fn send(&self, _to: Rank, _wire: Wire) -> Result<()> {
                Err(Error::Disconnected("down"))
            }
            fn send_fault(&self, _to: Rank, _fault: RuntimeError) -> Result<()> {
                Ok(())
            }
            fn consumers(&self) -> usize {
                1
            }
        }
        let retrying = RetryingSender::new(
            AlwaysDown,
            RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_micros(400),
                jitter: 0.0,
            },
        );
        assert!(retrying
            .send(Rank(0), Wire::Eos(Rank(0), Channel::Net))
            .is_err());
        assert_eq!(retrying.retries(), 2, "attempts - 1 backoffs");
    }

    #[test]
    fn retry_exhaustion_surfaces_every_attempts_fault() {
        struct AlwaysDown;
        impl WireSender for AlwaysDown {
            fn send(&self, _to: Rank, _wire: Wire) -> Result<()> {
                Err(Error::Disconnected("down"))
            }
            fn send_fault(&self, _to: Rank, _fault: RuntimeError) -> Result<()> {
                Ok(())
            }
            fn consumers(&self) -> usize {
                1
            }
        }
        let policy = |attempts| RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(400),
            jitter: 0.0,
        };
        let retrying = RetryingSender::new(AlwaysDown, policy(3));
        match retrying
            .send(Rank(0), Wire::Eos(Rank(0), Channel::Net))
            .unwrap_err()
        {
            Error::Aggregate(faults) => {
                assert_eq!(faults.len(), 3, "one error per attempt");
                assert!(faults.iter().all(|f| matches!(f, Error::Disconnected(_))));
            }
            other => panic!("expected Aggregate, got {other:?}"),
        }
        // A single-attempt policy keeps the lone error un-wrapped.
        let one_shot = RetryingSender::new(AlwaysDown, policy(1));
        assert!(matches!(
            one_shot
                .send(Rank(0), Wire::Eos(Rank(0), Channel::Net))
                .unwrap_err(),
            Error::Disconnected(_)
        ));
    }

    #[test]
    fn traced_sender_records_wire_spans() {
        use zipper_trace::TraceMode;
        let (sink, clock) = TraceSink::virtual_clock(TraceMode::Full);
        let mesh = ChannelMesh::new(1, 8);
        let rx = mesh.take_receiver(Rank(0)).unwrap();
        let traced = TracedSender::new(mesh.sender(), &sink, "net/p0");
        clock.advance(zipper_types::SimTime::from_millis(1));
        traced.send(Rank(0), Wire::Msg(msg(0, 64))).unwrap();
        traced.send_eos(Rank(0), Channel::Net, &[Rank(0)]).unwrap();
        drop(traced); // flush the net lane
        assert!(matches!(rx.recv().unwrap(), Wire::Msg(_)));
        let log = sink.snapshot();
        let lane = log.lane_by_label("net/p0").expect("net lane");
        let spans = log.lane_spans(lane);
        assert_eq!(spans.len(), 2, "one span per wire");
        assert!(spans.iter().all(|s| s.kind == SpanKind::Send));
    }

    #[test]
    fn mesh_telemetry_tracks_traffic_and_inbox_depth() {
        let telemetry = Telemetry::on();
        let mesh = ChannelMesh::new(1, 8).with_telemetry(telemetry.clone());
        let s = mesh.sender();
        let r = mesh.take_receiver(Rank(0)).unwrap();
        s.send(Rank(0), Wire::Msg(msg(0, 64))).unwrap();
        s.send(Rank(0), Wire::Msg(msg(1, 64))).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(CounterId::NetMessages), 2);
        assert!(snap.counter(CounterId::NetBytes) > 128);
        assert_eq!(snap.gauge(GaugeId::InboxDepth), 2);
        assert_eq!(snap.histogram(HistogramId::SendBytes).count, 2);
        r.recv().unwrap();
        assert_eq!(telemetry.snapshot().gauge(GaugeId::InboxDepth), 1);
        r.recv().unwrap();
        assert_eq!(telemetry.snapshot().gauge(GaugeId::InboxDepth), 0);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let mesh = ChannelMesh::new(1, 1);
        let s = mesh.sender();
        drop(mesh.take_receiver(Rank(0)).unwrap());
        drop(mesh); // drop the mesh's own tx clones too
        assert!(matches!(
            s.send(Rank(0), Wire::Eos(Rank(0), Channel::Net)),
            Err(Error::Disconnected(_))
        ));
    }
}
