//! The message channel between producer and consumer ranks: a mesh of
//! bounded channels, optionally throttled to a shared aggregate bandwidth
//! so a laptop run exhibits the finite-network effects the paper measures.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use zipper_trace::{LaneRecorder, SpanKind, TraceSink};
use zipper_types::{Error, MixedMessage, Rank, Result};

/// What travels on the wire: mixed messages, or an end-of-stream marker
/// from one producer rank.
#[derive(Clone, Debug)]
pub enum Wire {
    Msg(MixedMessage),
    Eos(Rank),
}

impl Wire {
    fn wire_bytes(&self) -> u64 {
        match self {
            Wire::Msg(m) => m.wire_bytes(),
            Wire::Eos(_) => 16,
        }
    }
}

/// Shared-bandwidth throttle (single drain, identical to the PFS throttle:
/// concurrent senders queue on one aggregate-bandwidth timeline).
struct Throttle {
    bytes_per_sec: f64,
    latency: Duration,
    free_at: Mutex<Instant>,
}

impl Throttle {
    fn charge(&self, bytes: u64) {
        let xfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let now = Instant::now();
        let finish = {
            let mut free = self.free_at.lock();
            let start = (*free).max(now);
            let finish = start + xfer;
            *free = finish;
            finish
        };
        let deadline = finish + self.latency;
        let wait = deadline.saturating_duration_since(now);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

/// A P→Q channel mesh: every producer holds a [`MeshSender`] that can reach
/// any consumer; every consumer holds the [`MeshReceiver`] for its own rank.
pub struct ChannelMesh {
    txs: Vec<Sender<Wire>>,
    rxs: Mutex<Vec<Option<Receiver<Wire>>>>,
    throttle: Option<Arc<Throttle>>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
}

impl ChannelMesh {
    /// Create a mesh toward `consumers` ranks, each with a bounded inbox of
    /// `inbox_capacity` messages (backpressure: senders block on a full
    /// inbox exactly like a congested NIC).
    pub fn new(consumers: usize, inbox_capacity: usize) -> Self {
        assert!(consumers > 0, "need at least one consumer");
        assert!(inbox_capacity > 0, "inbox capacity must be positive");
        let mut txs = Vec::with_capacity(consumers);
        let mut rxs = Vec::with_capacity(consumers);
        for _ in 0..consumers {
            let (tx, rx) = bounded(inbox_capacity);
            txs.push(tx);
            rxs.push(Some(rx));
        }
        ChannelMesh {
            txs,
            rxs: Mutex::new(rxs),
            throttle: None,
            bytes_sent: Arc::new(AtomicU64::new(0)),
            messages_sent: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Impose a shared aggregate bandwidth (bytes/s) and per-message
    /// latency on every send.
    pub fn with_throttle(mut self, bytes_per_sec: f64, latency: Duration) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        self.throttle = Some(Arc::new(Throttle {
            bytes_per_sec,
            latency,
            free_at: Mutex::new(Instant::now()),
        }));
        self
    }

    /// Number of consumer endpoints.
    pub fn consumers(&self) -> usize {
        self.txs.len()
    }

    /// A sender handle for one producer rank (cheap to clone internally;
    /// one per producer thread).
    pub fn sender(&self) -> MeshSender {
        MeshSender {
            txs: self.txs.clone(),
            throttle: self.throttle.clone(),
            bytes_sent: self.bytes_sent.clone(),
            messages_sent: self.messages_sent.clone(),
        }
    }

    /// Take the receiver endpoint for consumer `rank`. Each rank's receiver
    /// can be taken exactly once.
    pub fn take_receiver(&self, rank: Rank) -> MeshReceiver {
        let mut rxs = self.rxs.lock();
        let rx = rxs
            .get_mut(rank.idx())
            .unwrap_or_else(|| panic!("consumer {rank:?} out of range"))
            .take()
            .unwrap_or_else(|| panic!("receiver for {rank:?} already taken"));
        MeshReceiver { rx }
    }

    /// Total payload bytes pushed through the mesh.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total messages pushed through the mesh.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }
}

/// Anything a producer's sender thread can ship wires through: the
/// in-process [`MeshSender`], or a cross-process transport such as
/// [`crate::transport_tcp::TcpSender`].
pub trait WireSender: Send {
    /// Send one wire to consumer `to`.
    fn send(&self, to: Rank, wire: Wire) -> Result<()>;
    /// Number of consumer endpoints reachable.
    fn consumers(&self) -> usize;

    /// Announce end-of-stream from producer `rank` to every consumer.
    fn broadcast_eos(&self, rank: Rank) -> Result<()> {
        for q in 0..self.consumers() {
            self.send(Rank(q as u32), Wire::Eos(rank))?;
        }
        Ok(())
    }
}

/// Producer-side endpoint: sends wires to any consumer rank.
pub struct MeshSender {
    txs: Vec<Sender<Wire>>,
    throttle: Option<Arc<Throttle>>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
}

impl WireSender for MeshSender {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        MeshSender::send(self, to, wire)
    }

    fn consumers(&self) -> usize {
        self.txs.len()
    }
}

impl MeshSender {
    /// Send one wire to consumer `to`, blocking on throttle and inbox
    /// backpressure.
    pub fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        let bytes = wire.wire_bytes();
        if let Some(t) = &self.throttle {
            t.charge(bytes);
        }
        self.txs
            .get(to.idx())
            .ok_or(Error::Disconnected("unknown consumer rank"))?
            .send(wire)
            .map_err(|_| Error::Disconnected("consumer inbox closed"))?;
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Announce end-of-stream from producer `rank` to every consumer.
    pub fn broadcast_eos(&self, rank: Rank) -> Result<()> {
        for q in 0..self.txs.len() {
            self.send(Rank(q as u32), Wire::Eos(rank))?;
        }
        Ok(())
    }

    /// Number of consumer endpoints.
    pub fn consumers(&self) -> usize {
        self.txs.len()
    }
}

impl Clone for MeshSender {
    fn clone(&self) -> Self {
        MeshSender {
            txs: self.txs.clone(),
            throttle: self.throttle.clone(),
            bytes_sent: self.bytes_sent.clone(),
            messages_sent: self.messages_sent.clone(),
        }
    }
}

impl WireSender for Box<dyn WireSender> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        (**self).send(to, wire)
    }

    fn consumers(&self) -> usize {
        (**self).consumers()
    }
}

/// A [`WireSender`] adapter that records every outgoing wire as a `Send`
/// span on a dedicated network lane (e.g. `net/p0`). The workflow driver
/// wraps each producer's mesh endpoint with one of these in full-trace
/// mode, which makes wire time its own row on the rendered timeline —
/// distinct from the sender *thread*'s lane, whose `Send` spans also
/// include routing and pending-ID bookkeeping.
pub struct TracedSender<S> {
    inner: S,
    rec: Mutex<LaneRecorder>,
}

impl<S: WireSender> TracedSender<S> {
    /// Wrap `inner`, recording its sends on the sink lane `label`.
    pub fn new(inner: S, sink: &TraceSink, label: impl Into<String>) -> Self {
        TracedSender {
            inner,
            rec: Mutex::new(sink.recorder(label)),
        }
    }
}

impl<S: WireSender> WireSender for TracedSender<S> {
    fn send(&self, to: Rank, wire: Wire) -> Result<()> {
        self.rec
            .lock()
            .time(SpanKind::Send, || self.inner.send(to, wire))
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

/// Consumer-side endpoint: receives wires for one rank.
pub struct MeshReceiver {
    rx: Receiver<Wire>,
}

impl MeshReceiver {
    /// Wrap a raw wire channel — used by alternative transports (TCP)
    /// whose reader threads decode frames into a channel.
    pub fn from_channel(rx: Receiver<Wire>) -> Self {
        MeshReceiver { rx }
    }

    /// Blocking receive; `Err` means every sender disconnected.
    pub fn recv(&self) -> Result<Wire> {
        self.rx
            .recv()
            .map_err(|_| Error::Disconnected("all producers disconnected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipper_types::block::deterministic_payload;
    use zipper_types::{Block, BlockId, GlobalPos, StepId};

    fn msg(idx: u32, len: usize) -> MixedMessage {
        let id = BlockId::new(Rank(0), StepId(0), idx);
        MixedMessage::data_only(Block::from_payload(
            Rank(0),
            StepId(0),
            idx,
            8,
            GlobalPos::default(),
            deterministic_payload(id, len),
        ))
    }

    #[test]
    fn mesh_routes_to_the_right_consumer() {
        let mesh = ChannelMesh::new(2, 8);
        let s = mesh.sender();
        let r0 = mesh.take_receiver(Rank(0));
        let r1 = mesh.take_receiver(Rank(1));
        s.send(Rank(0), Wire::Msg(msg(10, 64))).unwrap();
        s.send(Rank(1), Wire::Msg(msg(11, 64))).unwrap();
        match r0.recv().unwrap() {
            Wire::Msg(m) => assert_eq!(m.data.unwrap().id().idx, 10),
            w => panic!("unexpected {w:?}"),
        }
        match r1.recv().unwrap() {
            Wire::Msg(m) => assert_eq!(m.data.unwrap().id().idx, 11),
            w => panic!("unexpected {w:?}"),
        }
        assert_eq!(mesh.messages_sent(), 2);
        assert!(mesh.bytes_sent() > 128);
    }

    #[test]
    fn eos_broadcast_reaches_everyone() {
        let mesh = ChannelMesh::new(3, 4);
        let s = mesh.sender();
        let rs: Vec<_> = (0..3).map(|q| mesh.take_receiver(Rank(q))).collect();
        s.broadcast_eos(Rank(5)).unwrap();
        for r in &rs {
            match r.recv().unwrap() {
                Wire::Eos(p) => assert_eq!(p, Rank(5)),
                w => panic!("unexpected {w:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_take_receiver_panics() {
        let mesh = ChannelMesh::new(1, 1);
        let _a = mesh.take_receiver(Rank(0));
        let _b = mesh.take_receiver(Rank(0));
    }

    #[test]
    fn throttle_slows_sends() {
        // 1 MB at 10 MB/s ⇒ ~100 ms.
        let mesh = ChannelMesh::new(1, 8).with_throttle(10e6, Duration::ZERO);
        let s = mesh.sender();
        let _r = mesh.take_receiver(Rank(0));
        let t0 = Instant::now();
        s.send(Rank(0), Wire::Msg(msg(0, 1_000_000))).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn traced_sender_records_wire_spans() {
        use zipper_trace::TraceMode;
        let (sink, clock) = TraceSink::virtual_clock(TraceMode::Full);
        let mesh = ChannelMesh::new(1, 8);
        let rx = mesh.take_receiver(Rank(0));
        let traced = TracedSender::new(mesh.sender(), &sink, "net/p0");
        clock.advance(zipper_types::SimTime::from_millis(1));
        traced.send(Rank(0), Wire::Msg(msg(0, 64))).unwrap();
        traced.broadcast_eos(Rank(0)).unwrap();
        drop(traced); // flush the net lane
        assert!(matches!(rx.recv().unwrap(), Wire::Msg(_)));
        let log = sink.snapshot();
        let lane = log.lane_by_label("net/p0").expect("net lane");
        let spans = log.lane_spans(lane);
        assert_eq!(spans.len(), 2, "one span per wire");
        assert!(spans.iter().all(|s| s.kind == SpanKind::Send));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let mesh = ChannelMesh::new(1, 1);
        let s = mesh.sender();
        drop(mesh.take_receiver(Rank(0)));
        drop(mesh); // drop the mesh's own tx clones too
        assert!(matches!(
            s.send(Rank(0), Wire::Eos(Rank(0))),
            Err(Error::Disconnected(_))
        ));
    }
}
