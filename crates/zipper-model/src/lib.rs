//! # zipper-model
//!
//! The analytical performance model of §4.4 and the pipeline schedules of
//! Figs. 3 and 11.
//!
//! With `P` simulation cores, `Q` analysis cores, `D` bytes of output in
//! blocks of `B` bytes (`n_b = D/B` blocks), and per-block times `t_c`
//! (compute), `t_m` (transfer) and `t_a` (analyze), the paper models the
//! pipelined end-to-end time as
//!
//! ```text
//! T_t2s = max(T_comp, T_transfer, T_analysis)
//!       = max(t_c · n_b / P,  T_transfer,  t_a · n_b / Q)
//! ```
//!
//! assuming `n_b` is much larger than the number of pipeline stages (fill
//! and drain are ignored). This crate implements that model, an *exact*
//! pipeline schedule (which includes fill/drain, so the asymptotic claim
//! can be tested rather than assumed), and the non-integrated baseline of
//! Fig. 11's upper diagram.

pub mod model;
pub mod pipeline;

pub use model::{ModelInput, Prediction, Stage};
pub use pipeline::{integrated_time, non_integrated_time, pipeline_schedule};
