//! Exact pipeline schedules — Fig. 11's integrated vs non-integrated
//! designs, computed rather than hand-drawn.
//!
//! Each of `n` data blocks passes through `k` stages (the paper's
//! C → O → I → A). The *non-integrated* design runs each stage to
//! completion over the whole dataset before starting the next; the
//! *integrated* design pipelines blocks through the stages with one
//! dedicated executor per stage.

use zipper_types::SimTime;

/// Completion time of the non-integrated design: stage `j` starts only
/// after stage `j-1` processed every block, so
/// `T = n · (t_1 + t_2 + … + t_k)`.
pub fn non_integrated_time(n_blocks: u64, stage_times: &[SimTime]) -> SimTime {
    assert!(!stage_times.is_empty(), "need at least one stage");
    let per_block: u64 = stage_times.iter().map(|t| t.as_nanos()).sum();
    SimTime::from_nanos(per_block * n_blocks)
}

/// Completion time of the integrated (pipelined) design with one executor
/// per stage and FIFO block order. Computed exactly with the classic
/// recurrence `finish[i][j] = max(finish[i-1][j], finish[i][j-1]) + t_j`,
/// which equals `Σ t_j + (n−1) · max_j t_j` for constant stage times.
pub fn integrated_time(n_blocks: u64, stage_times: &[SimTime]) -> SimTime {
    assert!(!stage_times.is_empty(), "need at least one stage");
    if n_blocks == 0 {
        return SimTime::ZERO;
    }
    // Rolling row of the dynamic program: finish time of the current block
    // at each stage.
    let k = stage_times.len();
    let mut prev = vec![0u64; k]; // finish[i-1][j]
    for _ in 0..n_blocks {
        let mut cur = vec![0u64; k];
        for j in 0..k {
            let ready = if j == 0 { 0 } else { cur[j - 1] };
            let free = prev[j];
            cur[j] = ready.max(free) + stage_times[j].as_nanos();
        }
        prev = cur;
    }
    SimTime::from_nanos(prev[k - 1])
}

/// Full schedule of the integrated pipeline: for each block, the
/// `(start, finish)` of every stage. Used to *draw* Fig. 11.
pub fn pipeline_schedule(n_blocks: u64, stage_times: &[SimTime]) -> Vec<Vec<(SimTime, SimTime)>> {
    assert!(!stage_times.is_empty(), "need at least one stage");
    let k = stage_times.len();
    let mut rows = Vec::with_capacity(n_blocks as usize);
    let mut prev_finish = vec![0u64; k];
    for _ in 0..n_blocks {
        let mut row = Vec::with_capacity(k);
        let mut cur_finish = vec![0u64; k];
        for j in 0..k {
            let ready = if j == 0 { 0 } else { cur_finish[j - 1] };
            let start = ready.max(prev_finish[j]);
            let finish = start + stage_times[j].as_nanos();
            cur_finish[j] = finish;
            row.push((SimTime::from_nanos(start), SimTime::from_nanos(finish)));
        }
        prev_finish = cur_finish;
        rows.push(row);
    }
    rows
}

/// The asymptotic claim of §4.4: for large `n`, the integrated time per
/// block approaches the slowest stage time (everything else is hidden).
pub fn asymptotic_per_block(stage_times: &[SimTime]) -> SimTime {
    stage_times
        .iter()
        .copied()
        .max()
        .expect("need at least one stage")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn closed_form_matches_dp_for_constant_stages() {
        let stages = [ms(3), ms(5), ms(2), ms(4)];
        for n in [1u64, 2, 7, 100] {
            let dp = integrated_time(n, &stages);
            let closed = SimTime::from_nanos(
                stages.iter().map(|t| t.as_nanos()).sum::<u64>() + (n - 1) * ms(5).as_nanos(),
            );
            assert_eq!(dp, closed, "n={n}");
        }
    }

    #[test]
    fn integrated_beats_non_integrated() {
        let stages = [ms(4), ms(4), ms(4), ms(4)];
        let n = 50;
        let ni = non_integrated_time(n, &stages);
        let it = integrated_time(n, &stages);
        assert_eq!(ni, SimTime::from_millis(16 * 50));
        assert_eq!(it, SimTime::from_millis(16 + 49 * 4));
        // With k equal stages the asymptotic speedup is k (here 4).
        let speedup = ni.as_secs_f64() / it.as_secs_f64();
        assert!(speedup > 3.7, "speedup={speedup}");
    }

    #[test]
    fn per_block_time_approaches_slowest_stage() {
        let stages = [ms(1), ms(7), ms(2)];
        let n = 10_000u64;
        let per_block = integrated_time(n, &stages).as_secs_f64() / n as f64;
        let bound = asymptotic_per_block(&stages).as_secs_f64();
        assert!((per_block - bound) / bound < 0.001, "per_block={per_block}");
    }

    #[test]
    fn schedule_is_consistent() {
        let stages = [ms(2), ms(3)];
        let sched = pipeline_schedule(3, &stages);
        assert_eq!(sched.len(), 3);
        for (i, row) in sched.iter().enumerate() {
            assert_eq!(row.len(), 2);
            // Stages of one block are ordered.
            assert!(row[0].1 <= row[1].0 || row[0].1 == row[1].0);
            // A stage executor never overlaps two blocks.
            if i > 0 {
                assert!(sched[i - 1][0].1 <= row[0].0);
                assert!(sched[i - 1][1].1 <= row[1].0);
            }
        }
        // Last block's last stage equals integrated_time.
        assert_eq!(sched[2][1].1, integrated_time(3, &stages));
    }

    #[test]
    fn zero_blocks_is_zero_time() {
        assert_eq!(integrated_time(0, &[ms(1)]), SimTime::ZERO);
        assert_eq!(non_integrated_time(0, &[ms(1)]), SimTime::ZERO);
    }
}
