//! The max-of-stages model.

use zipper_types::{ByteSize, SimTime};

/// Inputs of the §4.4 model.
#[derive(Clone, Copy, Debug)]
pub struct ModelInput {
    /// Simulation processor cores, `P`.
    pub p: u64,
    /// Analysis processor cores, `Q`.
    pub q: u64,
    /// Total simulation output, `D`.
    pub total_bytes: ByteSize,
    /// Fine-grain block size, `B` (1–8 MB in the experiments).
    pub block_size: ByteSize,
    /// Time to compute one block, `t_c`.
    pub tc: SimTime,
    /// Time to transfer one block over one channel, `t_m`.
    pub tm: SimTime,
    /// Time to analyze one block, `t_a`.
    pub ta: SimTime,
    /// Number of transfer channels working concurrently (e.g. one per
    /// producer NIC; with the dual-channel optimization, message + file
    /// paths add up). The paper's simple model has transfers fully
    /// parallel per producer; `transfer_lanes = P` reproduces that.
    pub transfer_lanes: u64,
}

impl ModelInput {
    /// Number of fine-grain blocks, `n_b = D / B` (rounded up).
    pub fn n_blocks(&self) -> u64 {
        self.total_bytes.blocks_of(self.block_size)
    }

    fn validate(&self) {
        assert!(self.p > 0 && self.q > 0, "P and Q must be positive");
        assert!(self.transfer_lanes > 0, "need at least one transfer lane");
        assert!(self.block_size.as_u64() > 0, "block size must be positive");
    }
}

/// The model's output: the three stage times and their max.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// `T_comp = t_c · n_b / P`.
    pub t_comp: SimTime,
    /// `T_transfer = t_m · n_b / lanes`.
    pub t_transfer: SimTime,
    /// `T_analysis = t_a · n_b / Q`.
    pub t_analysis: SimTime,
}

impl Prediction {
    /// Evaluate the model.
    pub fn from_input(input: &ModelInput) -> Prediction {
        input.validate();
        let nb = input.n_blocks();
        Prediction {
            t_comp: SimTime::from_nanos(input.tc.as_nanos() * nb / input.p),
            t_transfer: SimTime::from_nanos(input.tm.as_nanos() * nb / input.transfer_lanes),
            t_analysis: SimTime::from_nanos(input.ta.as_nanos() * nb / input.q),
        }
    }

    /// `T_t2s = max(T_comp, T_transfer, T_analysis)`.
    pub fn time_to_solution(&self) -> SimTime {
        self.t_comp.max(self.t_transfer).max(self.t_analysis)
    }

    /// Which stage dominates — the paper uses this to say "which component
    /// should be improved to achieve the fastest end-to-end time" (§1).
    pub fn bottleneck(&self) -> Stage {
        let t = self.time_to_solution();
        if t == self.t_comp {
            Stage::Simulation
        } else if t == self.t_transfer {
            Stage::Transfer
        } else {
            Stage::Analysis
        }
    }

    /// Relative error of a measured end-to-end time against the model.
    pub fn relative_error(&self, measured: SimTime) -> f64 {
        let predicted = self.time_to_solution().as_secs_f64();
        if predicted == 0.0 {
            return f64::INFINITY;
        }
        (measured.as_secs_f64() - predicted).abs() / predicted
    }
}

/// Pipeline stage names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Simulation,
    Transfer,
    Analysis,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Simulation => write!(f, "simulation"),
            Stage::Transfer => write!(f, "transfer"),
            Stage::Analysis => write!(f, "analysis"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(tc_ms: u64, tm_ms: u64, ta_ms: u64) -> ModelInput {
        ModelInput {
            p: 4,
            q: 2,
            total_bytes: ByteSize::mib(64),
            block_size: ByteSize::mib(1),
            tc: SimTime::from_millis(tc_ms),
            tm: SimTime::from_millis(tm_ms),
            ta: SimTime::from_millis(ta_ms),
            transfer_lanes: 4,
        }
    }

    #[test]
    fn stage_times_follow_the_formulas() {
        let i = input(4, 2, 6);
        assert_eq!(i.n_blocks(), 64);
        let p = Prediction::from_input(&i);
        assert_eq!(p.t_comp, SimTime::from_millis(4 * 64 / 4));
        assert_eq!(p.t_transfer, SimTime::from_millis(2 * 64 / 4));
        assert_eq!(p.t_analysis, SimTime::from_millis(6 * 64 / 2));
        assert_eq!(p.time_to_solution(), p.t_analysis);
        assert_eq!(p.bottleneck(), Stage::Analysis);
    }

    #[test]
    fn bottleneck_switches_with_costs() {
        // Paper Fig. 12: as the app's complexity rises, the dominant stage
        // switches from transfer to simulation.
        let cheap_sim = Prediction::from_input(&input(1, 10, 1));
        assert_eq!(cheap_sim.bottleneck(), Stage::Transfer);
        let heavy_sim = Prediction::from_input(&input(100, 10, 1));
        assert_eq!(heavy_sim.bottleneck(), Stage::Simulation);
    }

    #[test]
    fn relative_error_is_symmetric_fraction() {
        let p = Prediction::from_input(&input(4, 2, 6));
        let t = p.time_to_solution();
        assert!(p.relative_error(t) < 1e-12);
        let off = SimTime::from_nanos(t.as_nanos() + t.as_nanos() / 10);
        assert!((p.relative_error(off) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn block_count_rounds_up() {
        let mut i = input(1, 1, 1);
        i.total_bytes = ByteSize::bytes(3 * (1 << 20) + 1);
        assert_eq!(i.n_blocks(), 4);
    }

    #[test]
    #[should_panic(expected = "P and Q")]
    fn zero_cores_rejected() {
        let mut i = input(1, 1, 1);
        i.p = 0;
        let _ = Prediction::from_input(&i);
    }
}
