//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the `proptest! { #[test] fn name(x in strategy, ..) { .. } }` macro,
//! * numeric `Range`/`RangeInclusive` strategies, tuple strategies,
//!   `proptest::bool::ANY`, and `proptest::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Each property runs a fixed number of deterministic cases (seeded from
//! the test name), with no shrinking: a failing case reports its index
//! and seed so it can be replayed by re-running the test.

use std::ops::{Range, RangeInclusive};

/// Cases per property. The real crate defaults to 256; 64 keeps the
/// heavier model-based properties quick while still exploring the space.
pub const NUM_CASES: u64 = 64;

/// Deterministic generator for strategy sampling (xorshift64*).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed | 1, // xorshift must not start at zero
        }
    }

    /// Seed derived from the property name, so every test gets a distinct
    /// but reproducible stream.
    pub fn for_property(name: &str, case: u64) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        Self::from_seed(h.finish())
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values of one type. Unlike the real crate there is no
/// value tree / shrinking — `sample` draws directly.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY` — a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Define property tests. Grammar (matching the subset of the real macro
/// this workspace uses):
///
/// ```ignore
/// proptest! {
///     /// doc
///     #[test]
///     fn prop_name(x in 0u32..10, v in proptest::collection::vec(0u8..255, 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                for __case in 0..$crate::NUM_CASES {
                    let mut __rng = $crate::TestRng::for_property(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            __case,
                            $crate::NUM_CASES,
                            __msg
                        );
                    }
                }
            }
        )+
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), __l, __r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({}:{})\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), __l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({}:{}): {}\n  both: {:?}",
                stringify!($left), stringify!($right), file!(), line!(),
                format!($($fmt)+), __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    proptest! {
        /// Integer ranges respect their bounds.
        #[test]
        fn int_ranges_in_bounds(x in 3u32..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0u8..4, 0.0f64..1.0), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for (b, f) in &v {
                prop_assert!(*b < 4);
                prop_assert!((0.0..1.0).contains(f), "f64 element {} out of range", f);
            }
        }

        #[test]
        fn eq_and_ne_macros(a in 0u64..100) {
            prop_assert_eq!(a, a);
            prop_assert_ne!(a, a + 1);
        }

        /// The coin lands on both sides over a modest sample.
        #[test]
        fn bool_any_hits_both_values(flips in crate::collection::vec(crate::bool::ANY, 64..65)) {
            prop_assert!(flips.iter().any(|&b| b));
            prop_assert!(flips.iter().any(|&b| !b));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_property("p", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::TestRng::for_property("p", c).next_u64())
            .collect();
        assert_eq!(a, b);
    }
}
