//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! API differences from std that this shim papers over:
//! * `lock()` / `read()` / `write()` return guards directly (no poisoning —
//!   a poisoned std lock is recovered with `into_inner`, matching
//!   parking_lot's "no poisoning" semantics).
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming the
//!   guard; internally the guard wraps an `Option` so the std guard can be
//!   moved through `std::sync::Condvar::wait` and put back.

// Vendored stand-in: owns its wall-clock/sleep usage; the determinism
// lint (clippy.toml disallowed-methods) targets zipper code, not shims.
#![allow(clippy::disallowed_methods)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can take the std guard out and put a new
    // one back without dropping the wrapper.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified. Unlike std, re-acquires into the same guard
    /// wrapper (parking_lot signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn condvar_wait_reacquires_same_guard() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
