//! Offline stand-in for `rand`.
//!
//! Provides the subset this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over numeric
//! ranges. Backed by xoshiro256++ with splitmix64 seeding, so streams are
//! deterministic per seed (a property the MD app relies on for
//! reproducible particle initialisation).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers; blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not the real crate's ChaCha,
    /// but the workspace only needs per-seed determinism, not parity).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&v));
            let i = rng.gen_range(3u32..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
