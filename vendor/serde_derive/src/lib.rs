//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The real derives generate visitor plumbing; here the traits are
//! markers, so the derive only needs the type's name. A tiny token scan
//! (find the `struct`/`enum` keyword, take the next identifier) replaces
//! `syn` — sufficient because no derive target in this workspace is
//! generic.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
