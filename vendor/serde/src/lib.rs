//! Offline stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` on plain data
//! types for downstream consumers; no code path actually serializes. So
//! the traits are markers and the derive macros (re-exported from the
//! companion `serde_derive` stub) expand to empty impls.

/// Marker trait matching `serde::Serialize`'s name and derive surface.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name and derive surface.
/// The lifetime parameter mirrors the real trait so explicit bounds like
/// `for<'de> T: Deserialize<'de>` still compile.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
