//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real API this workspace uses: a cheaply
//! cloneable, sliceable, immutable byte buffer backed by an `Arc<[u8]>`.
//! Clones and slices share the underlying allocation (pointer-stable),
//! matching the aliasing guarantees the runtime relies on for zero-copy
//! block routing.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from_vec(Vec::new())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    /// Wrap a static slice. (Copies once; the real crate aliases the
    /// static, but no caller here depends on that.)
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from_vec(s.to_vec())
    }

    /// Copy an arbitrary slice into a fresh shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from_vec(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    // Inherent method shadowing the AsRef trait method: callers use
    // `b.as_ref()` without importing the trait, matching the real
    // `bytes` crate API.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_vec(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "..{} bytes", self.len())?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        Bytes::as_ref(self).iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slices_share_and_offset() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(2) });
    }

    #[test]
    fn equality_and_len() {
        let a = Bytes::from_static(b"hello");
        assert_eq!(a, Bytes::copy_from_slice(b"hello"));
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a, b"hello"[..]);
    }
}
