//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_custom`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock harness: warm up, run `sample_size` samples, report the
//! median ns/iter (plus derived throughput) on stdout. No statistics
//! beyond the median, no HTML reports, no baselines.

// Vendored stand-in: owns its wall-clock/sleep usage; the determinism
// lint (clippy.toml disallowed-methods) targets zipper code, not shims.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.full_name(), self, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        run_benchmark(
            &format!("{}/{}", self.name, id.full_name()),
            &cfg,
            self.throughput.clone(),
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full_name())
    }
}

pub struct Bencher {
    /// Total measured time across all samples of the current run.
    elapsed: Duration,
    /// Iterations the harness asks the next measurement to run.
    iters: u64,
    /// Iterations actually performed (for ns/iter).
    done: u64,
}

impl Bencher {
    /// Time `f`, called `iters` times; the return value is passed through
    /// `black_box` so the work cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.done += self.iters;
    }

    /// Hand the iteration count to `f` and trust its own timing — used by
    /// benches that must set up per-measurement state outside the timed
    /// region.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed += f(self.iters);
        self.done += self.iters;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    cfg: &Criterion,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // estimating the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    let mut warmed = 0u32;
    while warm_start.elapsed() < cfg.warm_up_time && warmed < 1_000 {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            done: 0,
        };
        f(&mut b);
        if b.done > 0 {
            per_iter = b.elapsed / b.done as u32;
        }
        warmed += 1;
    }

    // Size each sample so the whole measurement roughly fits the budget.
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64
    };

    let mut samples_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: iters_per_sample,
            done: 0,
        };
        f(&mut b);
        if b.done > 0 {
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.done as f64);
        }
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = if samples_ns.is_empty() {
        0.0
    } else {
        samples_ns[samples_ns.len() / 2]
    };

    let mut line = format!(
        "{name:<50} {:>12}/iter ({} samples x {iters_per_sample} iters)",
        format_ns(median),
        samples_ns.len(),
    );
    if median > 0.0 {
        match throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                let gib_s = n as f64 / median; // bytes per ns == GB/s
                line.push_str(&format!("  {gib_s:>8.3} GB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let me_s = n as f64 / median * 1e3; // elements per ns -> M/s
                line.push_str(&format!("  {me_s:>8.3} Melem/s"));
            }
            None => {}
        }
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running each group (the bench targets use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Bytes(1024));
            g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ran += 1));
            g.bench_function("custom", |b| {
                b.iter_custom(|iters| {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(());
                    }
                    t.elapsed()
                })
            });
            g.finish();
        }
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran > 0);
    }
}
