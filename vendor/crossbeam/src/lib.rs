//! Offline stand-in for `crossbeam` (only the `channel` module), backed by
//! `std::sync::mpsc`. Covers the subset this workspace uses: `bounded`,
//! `unbounded`, cloneable `Sender`, iterable `Receiver`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Multi-producer sender; cloneable for both bounded and unbounded
    /// flavours (std's `SyncSender` and `Sender` are each cloneable).
    pub enum Sender<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; `Err` iff all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Sender::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }

        /// Non-blocking send; `Full` iff a bounded buffer has no free slot
        /// (an unbounded channel is never full).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Bounded(s) => s.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
                Sender::Unbounded(s) => s.send(value).map_err(|e| TrySendError::Disconnected(e.0)),
            }
        }
    }

    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive; `Err` iff the channel is empty and all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking receive with a deadline; `Timeout` iff nothing arrived
        /// within `timeout` and senders are still alive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.rx.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.rx.iter()
        }
    }

    /// A channel with a bounded buffer: senders block while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { rx })
    }

    /// A channel with an unbounded buffer: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { rx })
    }

    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        pub fn is_disconnected(&self) -> bool {
            matches!(self, TrySendError::Disconnected(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_roundtrip_and_disconnect() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv(), Ok(1));
        let rest: Vec<u32> = rx.into_iter().collect();
        assert_eq!(rest, [2]);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(tx.try_send(2).unwrap_err().is_full());
        drop(rx);
        assert!(tx.try_send(3).unwrap_err().is_disconnected());
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..10 {
            tx.try_send(i).unwrap();
        }
        drop(rx);
        assert_eq!(tx.try_send(11).unwrap_err().into_inner(), 11);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn unbounded_iteration() {
        let (tx, rx) = channel::unbounded::<u32>();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.into_iter().sum::<u32>(), 10);
    }
}
