//! Failure injection: the runtime must degrade gracefully — never hang,
//! never lose data on a *write*-side PFS failure (the writer thread pushes
//! the block back to the message path and retires), and surface read-side
//! failures in the consumer metrics.

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;
use zipper_pfs::{FailingFs, MemFs};
use zipper_types::{ByteSize, GlobalPos, RuntimeError, StepId, WorkflowConfig};
use zipper_workflow::{run_workflow, NetworkOptions, StorageOptions};

fn cfg() -> WorkflowConfig {
    let mut cfg = WorkflowConfig {
        producers: 2,
        consumers: 1,
        steps: 8,
        bytes_per_rank_step: ByteSize::kib(64),
        ..Default::default()
    };
    cfg.tuning.block_size = ByteSize::kib(8);
    cfg.tuning.producer_slots = 4;
    cfg.tuning.high_water_mark = 1;
    cfg
}

fn produce(
    cfg: &WorkflowConfig,
) -> impl Fn(zipper_types::Rank, &zipper_core::ZipperWriter) + Send + Sync {
    let steps = cfg.steps;
    let slab = cfg.bytes_per_rank_step.as_u64() as usize;
    move |rank, writer| {
        for s in 0..steps {
            writer.write_slab(
                StepId(s),
                GlobalPos::default(),
                Bytes::from(vec![rank.0 as u8; slab]),
            );
        }
    }
}

/// A PFS whose very first write fails: the writer thread must retire
/// without losing its stolen block, and every block still arrives over
/// the message channel.
#[test]
fn pfs_write_failure_degrades_to_message_only_without_data_loss() {
    let cfg = cfg();
    let storage = Arc::new(FailingFs::new(MemFs::new(), 1)); // fail every op
    let (report, counts) = run_workflow(
        &cfg,
        // Slow channel so stealing definitely engages (and then fails).
        NetworkOptions::throttled(1, 2e6, Duration::ZERO),
        StorageOptions::Custom(storage),
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    // Every block was delivered despite the dead PFS.
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
    let pt = report.producer_total();
    assert_eq!(pt.blocks_stolen, 0, "no block may count as stolen");
    assert_eq!(pt.blocks_sent, cfg.total_blocks());
    // The degradation is reported, not silent.
    let errors = report.errors();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, RuntimeError::WriterRetired { .. })),
        "expected a writer retirement report, got {errors:?}"
    );
    // The typed error still renders the human-readable story.
    assert!(
        errors
            .iter()
            .any(|e| e.to_string().contains("writer thread retired")),
        "display form lost the retirement message: {errors:?}"
    );
}

/// With an intermittently failing PFS, write-side failures cost nothing
/// (blocks fall back to the message path); any lost blocks must be
/// attributable to *read*-side faults recorded in the consumer metrics.
#[test]
fn intermittent_pfs_faults_are_accounted_exactly() {
    let cfg = cfg();
    let storage = Arc::new(FailingFs::new(MemFs::new(), 7));
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::throttled(1, 2e6, Duration::ZERO),
        StorageOptions::Custom(storage),
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    let delivered: u64 = counts.iter().sum();
    let read_faults = report
        .consumer_total()
        .errors
        .iter()
        .filter(|e| matches!(e, RuntimeError::BlockFetchFailed { .. }))
        .count() as u64;
    assert_eq!(
        delivered + read_faults,
        cfg.total_blocks(),
        "every block is either delivered or explicitly accounted as a read fault"
    );
    // The run terminated (we are here) — no hang — and producers finished
    // their full output.
    assert_eq!(report.producer_total().blocks_written, cfg.total_blocks());
}
