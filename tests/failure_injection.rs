//! Failure injection: the runtime must degrade gracefully — never hang,
//! never lose data on a *write*-side PFS failure (the writer thread pushes
//! the block back to the message path and retires), and surface read-side
//! failures in the consumer metrics.
//!
//! The matrix below drives every injectable fault through the full
//! workflow driver: PFS write/read failures (`FailingFs`, with and without
//! the retry layer), transport faults (`FailingTransport`: transient send
//! failures, corrupt wires, swallowed EOS markers), and asserts each run
//! terminates with the failure *typed* in the [`WorkflowReport`] — never a
//! hang, never a panic, never silent loss.

use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;
use zipper_core::{FaultKind, FaultPlan};
use zipper_pfs::{FailingFs, MemFs};
use zipper_trace::SpanKind;
use zipper_types::{ByteSize, GlobalPos, RetryPolicy, RuntimeError, StepId, WorkflowConfig};
use zipper_workflow::{run_workflow, NetworkOptions, StorageOptions};

fn cfg() -> WorkflowConfig {
    let mut cfg = WorkflowConfig {
        producers: 2,
        consumers: 1,
        steps: 8,
        bytes_per_rank_step: ByteSize::kib(64),
        ..Default::default()
    };
    cfg.tuning.block_size = ByteSize::kib(8);
    cfg.tuning.producer_slots = 4;
    cfg.tuning.high_water_mark = 1;
    cfg
}

fn produce(
    cfg: &WorkflowConfig,
) -> impl Fn(zipper_types::Rank, &zipper_core::ZipperWriter) + Send + Sync {
    let steps = cfg.steps;
    let slab = cfg.bytes_per_rank_step.as_u64() as usize;
    move |rank, writer| {
        for s in 0..steps {
            writer.write_slab(
                StepId(s),
                GlobalPos::default(),
                Bytes::from(vec![rank.0 as u8; slab]),
            );
        }
    }
}

/// A PFS whose very first write fails: the writer thread must retire
/// without losing its stolen block, and every block still arrives over
/// the message channel.
#[test]
fn pfs_write_failure_degrades_to_message_only_without_data_loss() {
    let cfg = cfg();
    let storage = Arc::new(FailingFs::new(MemFs::new(), 1)); // fail every op
    let (report, counts) = run_workflow(
        &cfg,
        // Slow channel so stealing definitely engages (and then fails).
        NetworkOptions::throttled(1, 2e6, Duration::ZERO),
        StorageOptions::Custom(storage),
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    // Every block was delivered despite the dead PFS.
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
    let pt = report.producer_total();
    assert_eq!(pt.blocks_stolen, 0, "no block may count as stolen");
    assert_eq!(pt.blocks_sent, cfg.total_blocks());
    // The degradation is reported, not silent.
    let errors = report.errors();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, RuntimeError::WriterRetired { .. })),
        "expected a writer retirement report, got {errors:?}"
    );
    // The typed error still renders the human-readable story.
    assert!(
        errors
            .iter()
            .any(|e| e.to_string().contains("writer thread retired")),
        "display form lost the retirement message: {errors:?}"
    );
}

/// With an intermittently failing PFS, write-side failures cost nothing
/// (blocks fall back to the message path); any lost blocks must be
/// attributable to *read*-side faults recorded in the consumer metrics.
#[test]
fn intermittent_pfs_faults_are_accounted_exactly() {
    let cfg = cfg();
    let storage = Arc::new(FailingFs::new(MemFs::new(), 7));
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::throttled(1, 2e6, Duration::ZERO),
        StorageOptions::Custom(storage),
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    let delivered: u64 = counts.iter().sum();
    let read_faults = report
        .consumer_total()
        .errors
        .iter()
        .filter(|e| matches!(e, RuntimeError::BlockFetchFailed { .. }))
        .count() as u64;
    assert_eq!(
        delivered + read_faults,
        cfg.total_blocks(),
        "every block is either delivered or explicitly accounted as a read fault"
    );
    // The run terminated (we are here) — no hang — and producers finished
    // their full output.
    assert_eq!(report.producer_total().blocks_written, cfg.total_blocks());
}

/// An intermittently failing PFS behind the retry layer loses nothing:
/// every failed `put`/`get` is re-attempted, the run completes clean, and
/// the recovery work is visible as `pfs_retries` plus `Retry` spans on the
/// `pfs/retry` trace lane.
#[test]
fn pfs_retry_layer_rides_over_intermittent_faults() {
    let cfg = cfg();
    let storage = Arc::new(FailingFs::new(MemFs::new(), 5)); // fail every 5th op
    let (report, counts) = run_workflow(
        &cfg,
        // Slow channel so the disk path (and thus the faulty PFS) engages.
        NetworkOptions::throttled(1, 2e6, Duration::ZERO),
        StorageOptions::Custom(storage).with_retry(RetryPolicy::new(
            4,
            Duration::from_micros(200),
            Duration::from_millis(2),
        )),
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    // Retries absorbed every fault: nothing lost, nothing degraded.
    report.assert_complete();
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
    assert!(
        report.producer_total().blocks_stolen > 0,
        "throttled channel must engage the disk path for this test to bite"
    );
    assert!(report.pfs_retries > 0, "the faulty PFS must have been hit");
    let retry_time = zipper_trace::stats::kind_time_filtered(&report.trace, SpanKind::Retry, |l| {
        l == "pfs/retry"
    });
    assert!(
        retry_time > zipper_types::SimTime::ZERO,
        "backoff must appear as Retry spans on the pfs/retry lane"
    );
}

/// Transient send failures under the retrying sender: every wire is
/// eventually delivered, the run completes clean, and the recovery is
/// visible as `net_retries` plus `Retry` spans on the per-producer retry
/// lanes.
#[test]
fn transient_send_failures_ride_over_net_retry() {
    let cfg = cfg();
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::unthrottled(4)
            .with_fault(FaultPlan::every(FaultKind::FailSend, 7))
            .with_retry(RetryPolicy::new(
                3,
                Duration::from_micros(200),
                Duration::from_millis(2),
            )),
        StorageOptions::Memory,
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    report.assert_complete();
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
    assert!(report.net_retries > 0, "injected send failures must retry");
    let retry_time = zipper_trace::stats::kind_time_filtered(&report.trace, SpanKind::Retry, |l| {
        l.starts_with("net/") && l.ends_with("/retry")
    });
    assert!(
        retry_time > zipper_types::SimTime::ZERO,
        "backoff must appear as Retry spans on the net retry lanes"
    );
}

/// Corrupt wires — the workflow-level equivalent of a TCP reader hitting
/// an undecodable frame — surface as typed in-band `Transport` faults in
/// the consumer's metrics. The stream *survives*: every uncorrupted wire
/// still arrives, including EOS, so the run terminates normally.
#[test]
fn corrupt_wires_are_typed_errors_and_the_stream_survives() {
    let mut cfg = cfg();
    // Message channel only: each producer's wire stream is then exactly
    // its blocks followed by one EOS, making the fault schedule exact.
    cfg.tuning.concurrent_transfer = false;
    // 64 data wires + 1 EOS per producer; a period-4 schedule strikes only
    // data wires (65 is odd), so EOS always survives this test.
    let per_producer = cfg.steps * cfg.blocks_per_rank_step();
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::unthrottled(8).with_fault(FaultPlan::every(FaultKind::CorruptWire, 4)),
        StorageOptions::Memory,
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    let corrupted_per_producer = per_producer / 4;
    let expected_faults = corrupted_per_producer * cfg.producers as u64;
    let delivered: u64 = counts.iter().sum();
    assert_eq!(delivered, cfg.total_blocks() - expected_faults);
    // Exact fault accounting lives in the counted view: each corrupt wire
    // fired one typed fault, even though the identical per-frame faults
    // fold into one readable entry per consumer in `errors()`.
    let transport_faults: u64 = report
        .error_counts()
        .iter()
        .filter(|(e, _)| matches!(e, RuntimeError::Transport { .. }))
        .map(|(_, n)| *n as u64)
        .sum();
    assert_eq!(
        transport_faults,
        expected_faults,
        "every corrupt wire is one typed Transport error: {:?}",
        report.error_counts()
    );
    let deduped = report
        .errors()
        .iter()
        .filter(|e| matches!(e, RuntimeError::Transport { .. }))
        .count();
    assert!(
        deduped <= cfg.consumers,
        "identical faults fold to at most one entry per consumer: {:?}",
        report.errors()
    );
    // The stream survived past each fault: producers flushed everything.
    assert_eq!(report.producer_total().blocks_written, cfg.total_blocks());
}

/// Every EOS marker swallowed — the lost-EOS hang this PR's watchdog
/// exists for. All data arrives, the stream never terminates; the
/// consumer's EOS watchdog must fire, close the stream, and report a typed
/// `EosTimeout` instead of hanging `join()` forever.
#[test]
fn swallowed_eos_trips_the_watchdog_instead_of_hanging() {
    let mut cfg = cfg();
    cfg.tuning.eos_timeout = Some(Duration::from_millis(300));
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::unthrottled(8).with_fault(FaultPlan::every(FaultKind::DropEos, 1)),
        StorageOptions::Memory,
        produce(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    // All data made it; only the EOS markers were lost.
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
    let errors = report.errors();
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, RuntimeError::EosTimeout { eos_seen: 0, .. })),
        "expected an EOS-watchdog report, got {errors:?}"
    );
}
