//! The paper's headline claims, checked as executable assertions at
//! reduced scale. Each test names the section/figure it covers.

use zipper_model::{integrated_time, non_integrated_time, ModelInput, Prediction};
use zipper_transports::{run, run_sim_only, TransportKind, WorkflowSpec};
use zipper_types::{ByteSize, SimTime};

/// Fig. 2 (shape): every baseline transport costs well more than
/// max(simulation-only, analysis-only); Decaf is the fastest baseline;
/// MPI-IO is the slowest and the most variable.
#[test]
fn fig2_ordering_holds_at_reduced_scale() {
    let mut spec = WorkflowSpec::cfd(32, 16, 10);
    spec.ranks_per_node = 16;
    spec.staging_servers = 4;
    spec.decaf_links = 8;

    let sim_only = run_sim_only(&spec).end_to_end;
    let mut times = Vec::new();
    for kind in TransportKind::ALL {
        // MPI-IO's dominant cost (metadata serialization) grows with rank
        // count, so its Fig. 2 ranking only appears at full scale; it is
        // checked separately below via its scaling behaviour.
        if kind == TransportKind::Zipper || kind == TransportKind::MpiIo {
            continue;
        }
        let r = run(kind, &spec);
        assert!(r.is_clean(), "{}: {:?}", r.name, r.fault);
        times.push((r.end_to_end, r.name));
        assert!(
            r.end_to_end.as_secs_f64() > sim_only.as_secs_f64() * 1.3,
            "{} should pay clearly over simulation-only",
            r.name
        );
    }
    times.sort();
    assert_eq!(times[0].1, "Decaf", "fastest baseline: {times:?}");

    // MPI-IO's unscalability: doubling the ranks (same per-rank work)
    // increases its end-to-end time substantially (Fig. 16's diverging
    // curve), while Decaf's stays nearly flat.
    let scale_time = |kind, ranks: usize| {
        let mut s = spec.clone();
        s.sim_ranks = ranks;
        s.ana_ranks = ranks / 2;
        run(kind, &s).end_to_end.as_secs_f64()
    };
    let mpiio_growth = scale_time(TransportKind::MpiIo, 128) / scale_time(TransportKind::MpiIo, 32);
    let decaf_growth = scale_time(TransportKind::Decaf, 64) / scale_time(TransportKind::Decaf, 32);
    assert!(
        mpiio_growth > 1.6,
        "MPI-IO must degrade with rank count (4x ranks), grew only {mpiio_growth:.2}x"
    );
    assert!(
        decaf_growth < 1.2,
        "Decaf should weak-scale here, grew {decaf_growth:.2}x"
    );

    // MPI-IO variance across seeds (the paper's min..max spread).
    let e2e = |seed| {
        let mut s = spec.clone();
        s.seed = seed;
        run(TransportKind::MpiIo, &s).end_to_end.as_secs_f64()
    };
    let samples = [e2e(1), e2e(2), e2e(3), e2e(4)];
    let min = samples.iter().cloned().fold(f64::MAX, f64::min);
    let max = samples.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min > 1.1,
        "MPI-IO should vary across runs: {samples:?}"
    );
}

/// §6.3 / Fig. 16: Zipper's end-to-end time almost equals simulation-only,
/// and it beats the best baseline by a clear factor.
#[test]
fn zipper_reaches_the_simulation_lower_bound() {
    let mut spec = WorkflowSpec::cfd(32, 16, 8);
    spec.ranks_per_node = 16;
    spec.decaf_links = 8;
    let zipper = run(TransportKind::Zipper, &spec);
    let decaf = run(TransportKind::Decaf, &spec);
    let sim_only = run_sim_only(&spec);
    assert!(zipper.is_clean() && decaf.is_clean());
    let bound_ratio = zipper.end_to_end.as_secs_f64() / sim_only.end_to_end.as_secs_f64();
    assert!(bound_ratio < 1.2, "Zipper/sim-only = {bound_ratio:.2}");
    let speedup = decaf.end_to_end.as_secs_f64() / zipper.end_to_end.as_secs_f64();
    assert!(
        speedup > 1.3,
        "paper reports 1.7-2.2x over Decaf; measured {speedup:.2}x"
    );
}

/// §4.4 / Figs. 12-13: the end-to-end time of the pipelined workflow is
/// close to the slowest stage, not the sum of stages.
#[test]
fn end_to_end_time_is_one_stage_not_the_sum() {
    use zipper_apps::Complexity;
    let spec = WorkflowSpec::synthetic(Complexity::N32, 12, 6, 64 << 20, 1 << 20);
    let r = run(TransportKind::Zipper, &spec);
    assert!(r.is_clean());
    // O(n^1.5): simulation dominates — 64 blocks/rank at ~31 ms each.
    let t_comp = spec.cost.sim_block_time(1 << 20) * 64;
    let ratio = r.end_to_end.as_secs_f64() / t_comp.as_secs_f64();
    assert!(
        (0.95..=1.25).contains(&ratio),
        "e2e should track the dominant stage: ratio {ratio:.2}"
    );
}

/// §4.4: the analytical model's prediction matches the simulator for a
/// compute-bound workflow.
#[test]
fn analytical_model_predicts_compute_bound_runs() {
    use zipper_apps::Complexity;
    let spec = WorkflowSpec::synthetic(Complexity::N32, 12, 6, 64 << 20, 1 << 20);
    let input = ModelInput {
        p: 12,
        q: 6,
        total_bytes: ByteSize::bytes(12 * (64 << 20)),
        block_size: ByteSize::mib(1),
        tc: spec.cost.sim_block_time(1 << 20),
        tm: SimTime::for_bytes(1 << 20, 10.2e9),
        ta: spec.cost.analysis_block_time(1 << 20),
        transfer_lanes: 12,
    };
    let pred = Prediction::from_input(&input);
    let r = run(TransportKind::Zipper, &spec);
    let err = pred.relative_error(r.end_to_end);
    assert!(err < 0.15, "model error {:.1}%", err * 100.0);
}

/// Fig. 11: the integrated design's asymptotic speedup over the
/// non-integrated design equals the stage-count for balanced stages.
#[test]
fn pipeline_speedup_approaches_stage_count() {
    let stages = [SimTime::from_millis(10); 4];
    let n = 2000;
    let speedup =
        non_integrated_time(n, &stages).as_secs_f64() / integrated_time(n, &stages).as_secs_f64();
    assert!((3.9..=4.0).contains(&speedup), "speedup {speedup}");
}

/// §6.3.1/§6.3.2: the crash behaviour at ≥6,528 cores differs per
/// application exactly as reported — Decaf overflows on CFD but not on
/// LAMMPS; Flexpath segfaults on both.
#[test]
fn crash_matrix_matches_the_paper() {
    // Use tiny rank counts but thresholds scaled down proportionally.
    let mut cfd = WorkflowSpec::cfd(8, 4, 2);
    cfd.ranks_per_node = 4;
    cfd.decaf_links = 2;
    cfd.staging_servers = 2;
    cfd.flexpath_crash_cores = Some(12);
    cfd.decaf_crash_cores = Some(12);
    assert!(!run(TransportKind::Flexpath, &cfd).is_clean());
    assert!(!run(TransportKind::Decaf, &cfd).is_clean());

    let mut lammps = WorkflowSpec::lammps(8, 4, 2);
    lammps.ranks_per_node = 4;
    lammps.decaf_links = 2;
    lammps.staging_servers = 2;
    lammps.flexpath_crash_cores = Some(12);
    // WorkflowSpec::lammps leaves decaf_crash_cores = None (the paper:
    // "the data size in LAMMPS does not reach the integer limit").
    assert!(!run(TransportKind::Flexpath, &lammps).is_clean());
    assert!(run(TransportKind::Decaf, &lammps).is_clean());
}

/// §4 summary point 1: fine-grain blocks beat one-big-block-per-step for
/// the same workflow on the same fabric (ablation of Zipper's first
/// design pillar, at a scale where the network is contended).
#[test]
fn fine_grain_blocks_do_not_lose_to_whole_step_slabs() {
    let mut fine = WorkflowSpec::cfd(32, 16, 6);
    fine.ranks_per_node = 16;
    fine.block_size = 1 << 20;
    let mut coarse = fine.clone();
    coarse.block_size = coarse.bytes_per_rank_step; // one block per step
    let rf = run(TransportKind::Zipper, &fine);
    let rc = run(TransportKind::Zipper, &coarse);
    assert!(rf.is_clean() && rc.is_clean());
    assert!(
        rf.end_to_end.as_secs_f64() <= rc.end_to_end.as_secs_f64() * 1.05,
        "fine {} vs coarse {}",
        rf.end_to_end,
        rc.end_to_end
    );
}
