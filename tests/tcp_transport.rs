//! End-to-end workflow over the TCP transport: producer and consumer
//! runtime modules exchanging mixed messages through real sockets —
//! the cross-process deployment shape of the paper's workflows.

use std::collections::HashSet;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use zipper_core::{encode_wire, listen_consumers, Consumer, Producer, TcpSender, Wire, MAX_FRAME};
use zipper_pfs::MemFs;
use zipper_types::block::deterministic_payload;
use zipper_types::MixedMessage;
use zipper_types::{
    Block, BlockId, ByteSize, GlobalPos, PreserveMode, Rank, RoutingPolicy, StepId, ZipperTuning,
};

fn tuning() -> ZipperTuning {
    ZipperTuning {
        block_size: ByteSize::kib(8),
        producer_slots: 8,
        high_water_mark: 5,
        consumer_slots: 64,
        concurrent_transfer: true,
        preserve: PreserveMode::NoPreserve,
        routing: RoutingPolicy::SourceAffine,
        eos_timeout: Some(std::time::Duration::from_secs(30)),
        recovery: Default::default(),
    }
}

#[test]
fn full_workflow_over_real_sockets() {
    let producers = 3usize;
    let consumers = 2usize;
    let blocks_per_producer = 40u32;
    let block_len = 8 << 10;

    // In a real deployment the consumer job binds and publishes its
    // addresses; the producer job connects. Here both run in one test
    // process, still through the loopback TCP stack.
    let (addrs, receivers) = listen_consumers(consumers, producers).unwrap();
    let storage = Arc::new(MemFs::new());

    let mut consumer_handles = Vec::new();
    for (q, rx) in receivers.into_iter().enumerate() {
        let mut c = Consumer::spawn(Rank(q as u32), tuning(), producers, rx, storage.clone());
        let reader = c.reader();
        consumer_handles.push((
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(b) = reader.read() {
                    assert_eq!(
                        b.payload,
                        deterministic_payload(b.id(), b.payload.len()),
                        "payload corrupted in TCP transit"
                    );
                    seen.push(b.id());
                }
                seen
            }),
            c,
        ));
    }

    let mut producer_handles = Vec::new();
    for p in 0..producers {
        let sender = TcpSender::connect(&addrs).unwrap();
        let mut prod = Producer::spawn(Rank(p as u32), tuning(), sender, storage.clone());
        let writer = prod.writer(block_len);
        producer_handles.push((
            std::thread::spawn(move || {
                for i in 0..blocks_per_producer {
                    let id = BlockId::new(Rank(p as u32), StepId(0), i);
                    writer.write(Block::from_payload(
                        Rank(p as u32),
                        StepId(0),
                        i,
                        blocks_per_producer,
                        GlobalPos::default(),
                        deterministic_payload(id, block_len),
                    ));
                }
                writer.finish();
            }),
            prod,
        ));
    }

    for (h, prod) in producer_handles {
        h.join().unwrap();
        let pm = prod.join();
        assert!(pm.errors.is_empty(), "{:?}", pm.errors);
    }
    let mut all = Vec::new();
    for (h, c) in consumer_handles {
        all.extend(h.join().unwrap());
        let m = c.join();
        assert!(m.errors.is_empty(), "{:?}", m.errors);
    }
    let unique: HashSet<BlockId> = all.iter().copied().collect();
    assert_eq!(all.len(), producers * blocks_per_producer as usize);
    assert_eq!(unique.len(), all.len(), "duplicate deliveries over TCP");
}

/// A frame drip-fed one byte at a time — length prefix included — must
/// reassemble on the consumer side exactly as if it arrived whole. TCP
/// gives no framing guarantees; the reader's `read_exact` loop is what
/// turns an arbitrary byte dribble back into frames.
#[test]
fn partial_writes_reassemble_into_whole_frames() {
    let (addrs, receivers) = listen_consumers(1, 1).unwrap();
    let mut raw = TcpStream::connect(addrs[0]).unwrap();
    raw.set_nodelay(true).unwrap();

    let id = BlockId::new(Rank(0), StepId(4), 1);
    let block = Block::from_payload(
        Rank(0),
        StepId(4),
        1,
        2,
        GlobalPos::default(),
        deterministic_payload(id, 512),
    );
    let body = encode_wire(&Wire::Msg(MixedMessage::data_only(block)));
    let mut frame = (body.len() as u64).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    // Byte-at-a-time: every read on the far side sees a short count.
    for b in &frame {
        raw.write_all(std::slice::from_ref(b)).unwrap();
        raw.flush().unwrap();
    }
    // A second frame split across the length-prefix boundary.
    let body2 = encode_wire(&Wire::Eos(Rank(0), zipper_policy::Channel::Net));
    let mut frame2 = (body2.len() as u64).to_le_bytes().to_vec();
    frame2.extend_from_slice(&body2);
    let (head, tail) = frame2.split_at(3);
    raw.write_all(head).unwrap();
    raw.flush().unwrap();
    raw.write_all(tail).unwrap();
    drop(raw);

    match receivers[0].recv().unwrap() {
        Wire::Msg(m) => {
            let b = m.data.unwrap();
            assert_eq!(b.id(), id);
            assert_eq!(b.payload, deterministic_payload(id, 512));
        }
        w => panic!("unexpected {w:?}"),
    }
    match receivers[0].recv().unwrap() {
        Wire::Eos(r, _) => assert_eq!(r, Rank(0)),
        w => panic!("unexpected {w:?}"),
    }
    // Clean close after the last frame ends the stream without an error
    // wire; the channel simply disconnects.
    assert!(receivers[0].recv().is_err());
}

/// A hostile length prefix (larger than [`MAX_FRAME`]) must drop the
/// connection instead of allocating the claimed buffer — the reader
/// rejects the frame before touching the allocator, so this returns
/// promptly rather than OOMing or hanging.
#[test]
fn oversized_length_prefix_drops_the_connection() {
    let (addrs, receivers) = listen_consumers(1, 1).unwrap();
    let mut raw = TcpStream::connect(addrs[0]).unwrap();
    raw.write_all(&((MAX_FRAME as u64) + 1).to_le_bytes())
        .unwrap();
    raw.flush().unwrap();
    // Reader thread rejects before touching the allocator, reports the
    // failure in-band as a typed transport fault, and exits. No wire ever
    // arrives.
    let err = receivers[0].recv().unwrap_err();
    assert!(
        matches!(
            err,
            zipper_types::Error::Runtime(zipper_types::RuntimeError::Transport { .. })
        ),
        "{err:?}"
    );
}

/// A stream that dies mid-body (short read) must not deliver a partial
/// wire: frames already completed arrive, the truncated one does not.
#[test]
fn truncated_frame_body_is_not_delivered() {
    let (addrs, receivers) = listen_consumers(1, 1).unwrap();
    let mut raw = TcpStream::connect(addrs[0]).unwrap();
    // One complete frame first.
    let body = encode_wire(&Wire::Msg(MixedMessage::disk_only(vec![BlockId::new(
        Rank(2),
        StepId(0),
        5,
    )])));
    raw.write_all(&(body.len() as u64).to_le_bytes()).unwrap();
    raw.write_all(&body).unwrap();
    // Then a frame that claims 100 bytes but delivers 10 before dying.
    raw.write_all(&100u64.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 10]).unwrap();
    raw.flush().unwrap();
    drop(raw);

    match receivers[0].recv().unwrap() {
        Wire::Msg(m) => assert_eq!(m.on_disk, vec![BlockId::new(Rank(2), StepId(0), 5)]),
        w => panic!("unexpected {w:?}"),
    }
    // The truncated frame surfaces as a typed transport fault, never as a
    // partial wire.
    let err = receivers[0].recv().unwrap_err();
    assert!(
        matches!(
            err,
            zipper_types::Error::Runtime(zipper_types::RuntimeError::Transport { .. })
        ),
        "{err:?}"
    );
}

#[test]
fn source_affinity_survives_the_socket_path() {
    let (addrs, receivers) = listen_consumers(2, 2).unwrap();
    let storage = Arc::new(MemFs::new());
    let mut handles = Vec::new();
    for (q, rx) in receivers.into_iter().enumerate() {
        let mut c = Consumer::spawn(Rank(q as u32), tuning(), 2, rx, storage.clone());
        let reader = c.reader();
        handles.push((
            std::thread::spawn(move || {
                let mut srcs = HashSet::new();
                while let Some(b) = reader.read() {
                    srcs.insert(b.id().src.0);
                }
                srcs
            }),
            c,
        ));
    }
    for p in 0..2u32 {
        let sender = TcpSender::connect(&addrs).unwrap();
        let mut prod = Producer::spawn(Rank(p), tuning(), sender, storage.clone());
        let writer = prod.writer(1024);
        for i in 0..10u32 {
            let id = BlockId::new(Rank(p), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(p),
                StepId(0),
                i,
                10,
                GlobalPos::default(),
                deterministic_payload(id, 1024),
            ));
        }
        writer.finish();
        let pm = prod.join();
        assert!(pm.errors.is_empty(), "{:?}", pm.errors);
    }
    for (q, (h, c)) in handles.into_iter().enumerate() {
        let srcs = h.join().unwrap();
        assert_eq!(srcs, HashSet::from([q as u32]));
        c.join();
    }
}
