//! End-to-end workflow over the TCP transport: producer and consumer
//! runtime modules exchanging mixed messages through real sockets —
//! the cross-process deployment shape of the paper's workflows.

use std::collections::HashSet;
use std::sync::Arc;
use zipper_core::{listen_consumers, Consumer, Producer, TcpSender};
use zipper_pfs::MemFs;
use zipper_types::block::deterministic_payload;
use zipper_types::{
    Block, BlockId, ByteSize, GlobalPos, PreserveMode, Rank, RoutingPolicy, StepId, ZipperTuning,
};

fn tuning() -> ZipperTuning {
    ZipperTuning {
        block_size: ByteSize::kib(8),
        producer_slots: 8,
        high_water_mark: 5,
        consumer_slots: 64,
        concurrent_transfer: true,
        preserve: PreserveMode::NoPreserve,
        routing: RoutingPolicy::SourceAffine,
    }
}

#[test]
fn full_workflow_over_real_sockets() {
    let producers = 3usize;
    let consumers = 2usize;
    let blocks_per_producer = 40u32;
    let block_len = 8 << 10;

    // In a real deployment the consumer job binds and publishes its
    // addresses; the producer job connects. Here both run in one test
    // process, still through the loopback TCP stack.
    let (addrs, receivers) = listen_consumers(consumers, producers).unwrap();
    let storage = Arc::new(MemFs::new());

    let mut consumer_handles = Vec::new();
    for (q, rx) in receivers.into_iter().enumerate() {
        let mut c = Consumer::spawn(Rank(q as u32), tuning(), producers, rx, storage.clone());
        let reader = c.reader();
        consumer_handles.push((
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(b) = reader.read() {
                    assert_eq!(
                        b.payload,
                        deterministic_payload(b.id(), b.payload.len()),
                        "payload corrupted in TCP transit"
                    );
                    seen.push(b.id());
                }
                seen
            }),
            c,
        ));
    }

    let mut producer_handles = Vec::new();
    for p in 0..producers {
        let sender = TcpSender::connect(&addrs).unwrap();
        let mut prod = Producer::spawn(Rank(p as u32), tuning(), sender, storage.clone());
        let writer = prod.writer(block_len);
        producer_handles.push((
            std::thread::spawn(move || {
                for i in 0..blocks_per_producer {
                    let id = BlockId::new(Rank(p as u32), StepId(0), i);
                    writer.write(Block::from_payload(
                        Rank(p as u32),
                        StepId(0),
                        i,
                        blocks_per_producer,
                        GlobalPos::default(),
                        deterministic_payload(id, block_len),
                    ));
                }
                writer.finish();
            }),
            prod,
        ));
    }

    for (h, prod) in producer_handles {
        h.join().unwrap();
        prod.join().unwrap();
    }
    let mut all = Vec::new();
    for (h, c) in consumer_handles {
        all.extend(h.join().unwrap());
        let m = c.join().unwrap();
        assert!(m.errors.is_empty(), "{:?}", m.errors);
    }
    let unique: HashSet<BlockId> = all.iter().copied().collect();
    assert_eq!(all.len(), producers * blocks_per_producer as usize);
    assert_eq!(unique.len(), all.len(), "duplicate deliveries over TCP");
}

#[test]
fn source_affinity_survives_the_socket_path() {
    let (addrs, receivers) = listen_consumers(2, 2).unwrap();
    let storage = Arc::new(MemFs::new());
    let mut handles = Vec::new();
    for (q, rx) in receivers.into_iter().enumerate() {
        let mut c = Consumer::spawn(Rank(q as u32), tuning(), 2, rx, storage.clone());
        let reader = c.reader();
        handles.push((
            std::thread::spawn(move || {
                let mut srcs = HashSet::new();
                while let Some(b) = reader.read() {
                    srcs.insert(b.id().src.0);
                }
                srcs
            }),
            c,
        ));
    }
    for p in 0..2u32 {
        let sender = TcpSender::connect(&addrs).unwrap();
        let mut prod = Producer::spawn(Rank(p), tuning(), sender, storage.clone());
        let writer = prod.writer(1024);
        for i in 0..10u32 {
            let id = BlockId::new(Rank(p), StepId(0), i);
            writer.write(Block::from_payload(
                Rank(p),
                StepId(0),
                i,
                10,
                GlobalPos::default(),
                deterministic_payload(id, 1024),
            ));
        }
        writer.finish();
        prod.join().unwrap();
    }
    for (q, (h, c)) in handles.into_iter().enumerate() {
        let srcs = h.join().unwrap();
        assert_eq!(srcs, HashSet::from([q as u32]));
        c.join().unwrap();
    }
}
