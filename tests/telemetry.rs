//! Cross-crate telemetry integration: DES model-fit accuracy, exporter
//! round trips, and the byte-stable Chrome-trace golden file.

use zipper_model::Prediction;
use zipper_trace::export::{chrome_trace, jsonl, validate_json, validate_jsonl};
use zipper_trace::{CausalGraph, CounterId, CriticalPath};
use zipper_transports::{run, TransportKind, TransportResult, WorkflowSpec};
use zipper_workflow::ModelFit;

/// Documented model-fit tolerance on the deterministic DES example: every
/// phase of the §4.4 model matches the measured lane totals within 10 %.
/// (See DESIGN.md "Observability" for why the bound is loose: the model
/// ignores pipeline fill/drain and halo exchange.)
const FIT_TOLERANCE: f64 = 0.10;

fn tiny_cfd() -> WorkflowSpec {
    let mut s = WorkflowSpec::cfd(4, 2, 3);
    s.ranks_per_node = 2;
    s.staging_servers = 2;
    s.decaf_links = 2;
    s
}

#[test]
fn des_model_fit_within_documented_tolerance() {
    // More steps than the export tests: the §4.4 model assumes the block
    // count dwarfs the pipeline depth, so a longer run amortizes the
    // fill/drain transient that the model deliberately ignores.
    let mut spec = tiny_cfd();
    spec.steps = 12;
    let r = run(TransportKind::Zipper, &spec);
    assert!(r.is_clean());
    let prediction = Prediction::from_input(&spec.model_input());
    let fit = ModelFit::from_trace(&r.trace, r.end_to_end, &prediction);
    assert!(
        fit.within(FIT_TOLERANCE),
        "max phase error {:.1}% exceeds {:.0}%\n{}",
        fit.max_error() * 100.0,
        FIT_TOLERANCE * 100.0,
        fit.table(),
    );
    // The table names every phase.
    let t = fit.table();
    for needle in ["comp", "transfer", "analysis", "t2s"] {
        assert!(t.contains(needle), "{t}");
    }
}

/// Acceptance gate for the causal engine: on the deterministic DES, the
/// critical-path verdict and the §4.4 model's `max(T_comp, T_transfer,
/// T_analysis)` argmax must name the same bottleneck — on the quickstart
/// example's shape and on the scaling_sim example's smallest ladder
/// point.
#[test]
fn critical_path_verdict_agrees_with_model_argmax() {
    let mut quickstart = WorkflowSpec::synthetic(
        zipper_apps::Complexity::Linear,
        4,
        2,
        2 << 20,   // 2 MiB per rank-step,
        256 << 10, // in 256 KiB blocks (examples/quickstart.rs)
    );
    quickstart.steps = 8;
    quickstart.ranks_per_node = 2;
    let mut scaling = WorkflowSpec::cfd(32, 16, 8); // scaling_sim, 48 cores
    scaling.decaf_links = 16;
    for (name, spec) in [("quickstart", quickstart), ("scaling_sim/48", scaling)] {
        let r = run(TransportKind::Zipper, &spec);
        assert!(r.is_clean(), "{name}: {:?} {:?}", r.fault, r.deadlocked);
        let graph = CausalGraph::build(&r.trace, &r.causal);
        let path =
            CriticalPath::extract(&graph).unwrap_or_else(|| panic!("{name}: no critical path"));
        let verdict = path.attribution.verdict();
        let prediction = Prediction::from_input(&spec.model_input());
        let fit = ModelFit::from_trace(&r.trace, r.end_to_end, &prediction);
        assert!(
            fit.agrees_with(verdict),
            "{name}: measured verdict {verdict} vs model argmax {}\n{}\n{}",
            fit.verdict(),
            path.attribution.table(),
            fit.table(),
        );
    }
}

#[test]
fn des_exports_round_trip_a_real_run() {
    let spec = tiny_cfd();
    let r = run(TransportKind::Zipper, &spec);
    assert!(r.is_clean());
    let chrome = chrome_trace(&r.trace, Some(&r.samples));
    validate_json(&chrome).expect("chrome trace must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    let lines = jsonl(&r.trace, Some(&r.samples));
    let n = validate_jsonl(&lines).expect("JSONL must be valid");
    // Meta line + every span + every sample.
    assert_eq!(n, 1 + r.trace.spans().len() + r.samples.len());
    // Sampled congestion counters appear in both formats.
    assert!(r.metrics.counter(CounterId::NetBytes) > 0);
    assert!(chrome.contains("net.bytes"), "counter events exported");
    assert!(lines.contains("net.bytes"));
}

/// Deterministic text rendering of a run's critical path: verdict,
/// structural signature, attribution table, and what-if sweep. Golden
/// below; any intentional change to the engine shows up as a reviewable
/// diff of this form.
fn render_critical_path(r: &TransportResult) -> String {
    let graph = CausalGraph::build(&r.trace, &r.causal);
    let path = CriticalPath::extract(&graph).expect("critical path");
    let mut out = String::new();
    out.push_str(&format!("makespan   {}\n", graph.makespan()));
    out.push_str(&format!("verdict    {}\n", path.attribution.verdict()));
    out.push_str("signature:\n");
    for s in path.signature(&graph) {
        out.push_str(&format!("  {s}\n"));
    }
    out.push_str("attribution:\n");
    out.push_str(&path.attribution.table());
    out.push_str("what-if:\n");
    for w in graph.what_if_sweep() {
        out.push_str(&format!("  {w}\n"));
    }
    out
}

#[test]
fn critical_path_golden_snapshot() {
    // Same tiny deterministic run as the Chrome-trace golden, so the two
    // files describe one workflow from two angles.
    let mut spec = WorkflowSpec::cfd(2, 1, 2);
    spec.ranks_per_node = 2;
    spec.staging_servers = 1;
    spec.decaf_links = 1;
    let a = run(TransportKind::Zipper, &spec);
    let b = run(TransportKind::Zipper, &spec);
    assert!(a.is_clean() && b.is_clean());
    let ra = render_critical_path(&a);
    assert_eq!(
        ra,
        render_critical_path(&b),
        "same spec must yield byte-identical critical paths"
    );

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/tiny_cfd_critical_path.txt"
    );
    if std::env::var_os("ZIPPER_REGOLD").is_some() {
        std::fs::write(golden_path, &ra).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing golden file; run with ZIPPER_REGOLD=1 to (re)generate");
    assert_eq!(
        ra, golden,
        "critical path drifted from the committed golden file \
         (ZIPPER_REGOLD=1 regenerates after intentional changes)"
    );
}

#[test]
fn chrome_trace_export_is_byte_stable() {
    // A smaller deterministic run keeps the golden file reviewable.
    let mut spec = WorkflowSpec::cfd(2, 1, 2);
    spec.ranks_per_node = 2;
    spec.staging_servers = 1;
    spec.decaf_links = 1;
    let a = run(TransportKind::Zipper, &spec);
    let b = run(TransportKind::Zipper, &spec);
    assert!(a.is_clean() && b.is_clean());
    let ja = chrome_trace(&a.trace, Some(&a.samples));
    let jb = chrome_trace(&b.trace, Some(&b.samples));
    assert_eq!(ja, jb, "same spec must export byte-identical traces");
    validate_json(&ja).expect("valid JSON");

    // Golden file: regenerate with ZIPPER_REGOLD=1 when the trace layout
    // intentionally changes.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/tiny_cfd_trace.json"
    );
    if std::env::var_os("ZIPPER_REGOLD").is_some() {
        std::fs::write(golden_path, &ja).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing golden file; run with ZIPPER_REGOLD=1 to (re)generate");
    assert_eq!(
        ja, golden,
        "Chrome-trace export drifted from the committed golden file \
         (ZIPPER_REGOLD=1 regenerates after intentional changes)"
    );
}
