//! Cross-crate telemetry integration: DES model-fit accuracy, exporter
//! round trips, and the byte-stable Chrome-trace golden file.

use zipper_model::Prediction;
use zipper_trace::export::{chrome_trace, jsonl, validate_json, validate_jsonl};
use zipper_trace::CounterId;
use zipper_transports::{run, TransportKind, WorkflowSpec};
use zipper_workflow::ModelFit;

/// Documented model-fit tolerance on the deterministic DES example: every
/// phase of the §4.4 model matches the measured lane totals within 10 %.
/// (See DESIGN.md "Observability" for why the bound is loose: the model
/// ignores pipeline fill/drain and halo exchange.)
const FIT_TOLERANCE: f64 = 0.10;

fn tiny_cfd() -> WorkflowSpec {
    let mut s = WorkflowSpec::cfd(4, 2, 3);
    s.ranks_per_node = 2;
    s.staging_servers = 2;
    s.decaf_links = 2;
    s
}

#[test]
fn des_model_fit_within_documented_tolerance() {
    // More steps than the export tests: the §4.4 model assumes the block
    // count dwarfs the pipeline depth, so a longer run amortizes the
    // fill/drain transient that the model deliberately ignores.
    let mut spec = tiny_cfd();
    spec.steps = 12;
    let r = run(TransportKind::Zipper, &spec);
    assert!(r.is_clean());
    let prediction = Prediction::from_input(&spec.model_input());
    let fit = ModelFit::from_trace(&r.trace, r.end_to_end, &prediction);
    assert!(
        fit.within(FIT_TOLERANCE),
        "max phase error {:.1}% exceeds {:.0}%\n{}",
        fit.max_error() * 100.0,
        FIT_TOLERANCE * 100.0,
        fit.table(),
    );
    // The table names every phase.
    let t = fit.table();
    for needle in ["comp", "transfer", "analysis", "t2s"] {
        assert!(t.contains(needle), "{t}");
    }
}

#[test]
fn des_exports_round_trip_a_real_run() {
    let spec = tiny_cfd();
    let r = run(TransportKind::Zipper, &spec);
    assert!(r.is_clean());
    let chrome = chrome_trace(&r.trace, Some(&r.samples));
    validate_json(&chrome).expect("chrome trace must be valid JSON");
    assert!(chrome.contains("\"traceEvents\""));
    let lines = jsonl(&r.trace, Some(&r.samples));
    let n = validate_jsonl(&lines).expect("JSONL must be valid");
    // Meta line + every span + every sample.
    assert_eq!(n, 1 + r.trace.spans().len() + r.samples.len());
    // Sampled congestion counters appear in both formats.
    assert!(r.metrics.counter(CounterId::NetBytes) > 0);
    assert!(chrome.contains("net.bytes"), "counter events exported");
    assert!(lines.contains("net.bytes"));
}

#[test]
fn chrome_trace_export_is_byte_stable() {
    // A smaller deterministic run keeps the golden file reviewable.
    let mut spec = WorkflowSpec::cfd(2, 1, 2);
    spec.ranks_per_node = 2;
    spec.staging_servers = 1;
    spec.decaf_links = 1;
    let a = run(TransportKind::Zipper, &spec);
    let b = run(TransportKind::Zipper, &spec);
    assert!(a.is_clean() && b.is_clean());
    let ja = chrome_trace(&a.trace, Some(&a.samples));
    let jb = chrome_trace(&b.trace, Some(&b.samples));
    assert_eq!(ja, jb, "same spec must export byte-identical traces");
    validate_json(&ja).expect("valid JSON");

    // Golden file: regenerate with ZIPPER_REGOLD=1 when the trace layout
    // intentionally changes.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/tiny_cfd_trace.json"
    );
    if std::env::var_os("ZIPPER_REGOLD").is_some() {
        std::fs::write(golden_path, &ja).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("missing golden file; run with ZIPPER_REGOLD=1 to (re)generate");
    assert_eq!(
        ja, golden,
        "Chrome-trace export drifted from the committed golden file \
         (ZIPPER_REGOLD=1 regenerates after intentional changes)"
    );
}
