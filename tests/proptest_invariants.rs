//! Property-based tests over the core data structures and models.

use proptest::prelude::*;
use std::sync::Arc;
use zipper_model::{integrated_time, non_integrated_time};
use zipper_pfs::{MemFs, OstModel, OstModelConfig, Storage};
use zipper_trace::{
    stats, Bucket, CausalGraph, CausalLog, CounterId, CriticalPath, EdgeKind, GaugeId,
    HistogramSnapshot, KindBreakdown, Probe, Sampler, Span, SpanKind, Telemetry, TraceLog,
    TraceMode, TraceSink, VirtualClock, WallClock,
};
use zipper_types::block::deterministic_payload;
use zipper_types::{Block, BlockId, ByteSize, GlobalPos, Rank, SimTime, StepId};

proptest! {
    /// BlockId ↔ u64 key is a bijection over the supported ranges.
    #[test]
    fn block_id_key_round_trips(src in 0u32..(1 << 24), step in 0u64..(1 << 24), idx in 0u32..(1 << 16)) {
        let id = BlockId::new(Rank(src), StepId(step), idx);
        prop_assert_eq!(BlockId::from_u64(id.as_u64()), id);
    }

    /// Splitting a slab into blocks never loses or invents bytes.
    #[test]
    fn block_split_conserves_bytes(total in 1u64..10_000_000, block in 1u64..2_000_000) {
        let n = ByteSize::bytes(total).blocks_of(ByteSize::bytes(block));
        let full = (n - 1) * block;
        prop_assert!(full < total);
        prop_assert!(total <= n * block);
    }

    /// SimTime byte-transfer arithmetic is monotone in bytes and inverse in
    /// bandwidth.
    #[test]
    fn transfer_time_is_monotone(bytes in 1u64..1_000_000_000, bw in 1.0e3f64..1.0e12) {
        let t1 = SimTime::for_bytes(bytes, bw);
        let t2 = SimTime::for_bytes(bytes + 1, bw);
        prop_assert!(t2 >= t1);
        let faster = SimTime::for_bytes(bytes, bw * 2.0);
        prop_assert!(faster <= t1);
    }

    /// Deterministic payloads: same id+len → identical; different id →
    /// different (with overwhelming probability for len ≥ 16).
    #[test]
    fn payload_determinism(a in 0u32..1000, b in 0u32..1000, len in 16usize..512) {
        let ida = BlockId::new(Rank(a), StepId(0), 0);
        let idb = BlockId::new(Rank(b), StepId(0), 0);
        let pa = deterministic_payload(ida, len);
        prop_assert_eq!(pa.clone(), deterministic_payload(ida, len));
        if a != b {
            prop_assert_ne!(pa, deterministic_payload(idb, len));
        }
    }

    /// The integrated pipeline is never slower than the non-integrated
    /// design, and never faster than its two lower bounds (sum of one
    /// block's stages; n × slowest stage).
    #[test]
    fn pipeline_bounds(
        n in 1u64..200,
        s1 in 1u64..50, s2 in 1u64..50, s3 in 1u64..50, s4 in 1u64..50,
    ) {
        let stages = [
            SimTime::from_millis(s1),
            SimTime::from_millis(s2),
            SimTime::from_millis(s3),
            SimTime::from_millis(s4),
        ];
        let it = integrated_time(n, &stages);
        let ni = non_integrated_time(n, &stages);
        prop_assert!(it <= ni);
        let per_block: u64 = stages.iter().map(|t| t.as_nanos()).sum();
        prop_assert!(it >= SimTime::from_nanos(per_block), "one pass lower bound");
        let slowest = stages.iter().map(|t| t.as_nanos()).max().unwrap();
        prop_assert!(it >= SimTime::from_nanos(slowest * n), "bottleneck lower bound");
        // Exact closed form for constant-per-stage pipelines.
        prop_assert_eq!(
            it,
            SimTime::from_nanos(per_block + (n - 1) * slowest)
        );
    }

    /// OST model: completions never precede arrival + minimum service, and
    /// the same OST never serves two requests at once (drain time grows at
    /// least linearly in total served bytes / aggregate bandwidth).
    #[test]
    fn ost_model_conserves_capacity(
        reqs in proptest::collection::vec((0u64..1000u64, 1u64..4_000_000u64, 0u64..64u64), 1..60),
        n_osts in 1usize..16,
    ) {
        let cfg = OstModelConfig {
            n_osts,
            ost_bandwidth: 1e9,
            op_latency: SimTime::ZERO,
            stripe_size: ByteSize::mib(1),
            background_load: 0.0,
            background_jitter: 0.0,
            read_bandwidth_factor: 2.0,
        };
        let mut model = OstModel::new(cfg, 1);
        let mut total_bytes = 0u64;
        for (at_ms, bytes, key) in &reqs {
            let now = SimTime::from_millis(*at_ms);
            let done = model.submit(now, *bytes, *key);
            prop_assert!(done >= now + SimTime::for_bytes(*bytes / (*bytes).div_ceil(1 << 20).max(1), 1e9));
            total_bytes += bytes;
        }
        // Aggregate capacity: the drain horizon cannot beat perfect
        // parallelism over all OSTs.
        let ideal = SimTime::for_bytes(total_bytes, 1e9 * n_osts as f64);
        prop_assert!(model.drain_time() >= ideal.min(model.drain_time()));
        prop_assert_eq!(model.requests(), reqs.len() as u64);
    }

    /// MemFs storage: arbitrary interleavings of put/get/delete behave like
    /// a map.
    #[test]
    fn memfs_behaves_like_a_map(ops in proptest::collection::vec((0u32..40u32, 0usize..3usize), 1..80)) {
        let store = MemFs::new();
        let mut reference = std::collections::HashMap::new();
        for (idx, op) in ops {
            let id = BlockId::new(Rank(0), StepId(0), idx);
            match op {
                0 => {
                    let b = Block::from_payload(
                        Rank(0), StepId(0), idx, 40, GlobalPos::default(),
                        deterministic_payload(id, 8 + idx as usize),
                    );
                    store.put(&b).unwrap();
                    reference.insert(idx, b);
                }
                1 => {
                    let got = store.get(id).ok();
                    prop_assert_eq!(got.as_ref(), reference.get(&idx));
                }
                _ => {
                    store.delete(id).unwrap();
                    reference.remove(&idx);
                }
            }
            prop_assert_eq!(store.len(), reference.len());
        }
    }

    /// Variance accumulator merging is order-insensitive.
    #[test]
    fn variance_merge_is_order_insensitive(data in proptest::collection::vec(-1e3f64..1e3, 2..200), split in 1usize..100) {
        use zipper_apps::analysis::VarianceAccumulator;
        let split = split % data.len().max(1);
        let mut whole = VarianceAccumulator::new();
        whole.update(&data);

        let (a, b) = data.split_at(split);
        let mut left = VarianceAccumulator::new();
        left.update(a);
        let mut right = VarianceAccumulator::new();
        right.update(b);
        // Merge in both orders.
        let mut lr = left;
        lr.merge(&right);
        let mut rl = right;
        rl.merge(&left);
        let v = whole.variance().unwrap();
        prop_assert!((lr.variance().unwrap() - v).abs() < 1e-6);
        prop_assert!((rl.variance().unwrap() - v).abs() < 1e-6);
    }

    /// Moment accumulator: merging partials equals a single pass, for all
    /// tracked orders.
    #[test]
    fn moments_merge_exactly(data in proptest::collection::vec(-10f64..10.0, 1..100), split in 0usize..100) {
        use zipper_apps::analysis::MomentAccumulator;
        let split = split % (data.len() + 1);
        let mut whole = MomentAccumulator::new(4);
        whole.update(&data);
        let mut merged = MomentAccumulator::new(4);
        let mut p1 = MomentAccumulator::new(4);
        p1.update(&data[..split]);
        let mut p2 = MomentAccumulator::new(4);
        p2.update(&data[split..]);
        merged.merge(&p1);
        merged.merge(&p2);
        for n in 1..=4 {
            let (w, m) = (whole.moment(n), merged.moment(n));
            match (w, m) {
                (Some(w), Some(m)) => prop_assert!((w - m).abs() <= 1e-9 * w.abs().max(1.0)),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}

proptest! {
    /// Spans produced by one lane recorder over a virtual clock are
    /// well-formed (`t1 >= t0`), mutually non-overlapping in time order,
    /// and the lane's per-kind totals are exactly the sum of its span
    /// durations — the invariant that lets metrics be derived views over
    /// the span log rather than separate bookkeeping.
    #[test]
    fn recorder_spans_are_ordered_and_totals_match(
        ops in proptest::collection::vec((0usize..3usize, 1u64..1000u64, 0u64..500u64), 1..60)
    ) {
        let clock = VirtualClock::new();
        let sink = TraceSink::new(TraceMode::Full, Arc::new(clock.clone()));
        let mut rec = sink.recorder("prop/lane");
        for (k, dur, gap) in &ops {
            // Random dead time between spans, then a timed op that
            // advances the shared clock while it runs.
            clock.advance(SimTime::from_nanos(*gap));
            let kind = [SpanKind::Compute, SpanKind::Send, SpanKind::Stall][*k];
            rec.time(kind, || clock.advance(SimTime::from_nanos(*dur)));
        }
        drop(rec);
        let log = sink.snapshot();
        let spans = log.spans();
        prop_assert_eq!(spans.len(), ops.len());
        let mut sum = KindBreakdown::default();
        for s in spans {
            prop_assert!(s.t1 >= s.t0);
            sum.add(s.kind, s.duration());
        }
        for w in spans.windows(2) {
            prop_assert!(w[0].t1 <= w[1].t0, "lane spans overlap: {:?} then {:?}", w[0], w[1]);
        }
        let totals = stats::total_breakdown(&log);
        for &k in SpanKind::ALL.iter() {
            prop_assert_eq!(totals.get(k), sum.get(k));
        }
    }

    /// A breakdown's `total()` is the sum of its parts, `overhead()` never
    /// exceeds it, and splitting the entry stream arbitrarily and merging
    /// the two halves reproduces the whole.
    #[test]
    fn breakdown_totals_are_sums_of_parts(
        entries in proptest::collection::vec((0usize..18usize, 0u64..1_000_000u64), 0..50),
        split in 0usize..50,
    ) {
        let mut whole = KindBreakdown::default();
        let mut left = KindBreakdown::default();
        let mut right = KindBreakdown::default();
        let split = split.min(entries.len());
        let mut nanos = 0u64;
        for (i, (k, d)) in entries.iter().enumerate() {
            let kind = SpanKind::ALL[k % SpanKind::ALL.len()];
            let dur = SimTime::from_nanos(*d);
            nanos += d;
            whole.add(kind, dur);
            if i < split { left.add(kind, dur) } else { right.add(kind, dur) }
        }
        prop_assert_eq!(whole.total(), SimTime::from_nanos(nanos));
        prop_assert!(whole.overhead() <= whole.total());
        left.merge(&right);
        for &k in SpanKind::ALL.iter() {
            prop_assert_eq!(left.get(k), whole.get(k));
        }
    }

    /// Windowed statistics partition additively: cutting `[0, end)` at any
    /// point yields two windows whose per-kind breakdowns sum back to the
    /// whole, and the whole window's breakdown equals the raw span time.
    #[test]
    fn window_stats_partition_additively(
        spans in proptest::collection::vec(
            (0u64..10_000u64, 1u64..5_000u64, 0usize..18usize, 0u64..8u64), 1..60),
        cut in 1u64..15_000u64,
    ) {
        let mut log = TraceLog::new();
        let lane = log.lane("prop/window");
        let mut horizon = 0u64;
        let mut per_kind = KindBreakdown::default();
        for (t0, dur, k, step) in &spans {
            let kind = SpanKind::ALL[k % SpanKind::ALL.len()];
            let (a, b) = (SimTime::from_nanos(*t0), SimTime::from_nanos(t0 + dur));
            log.record(Span::new(lane, kind, a, b).with_step(*step));
            per_kind.add(kind, SimTime::from_nanos(*dur));
            horizon = horizon.max(t0 + dur);
        }
        let end = horizon + 1;
        let cut = cut.clamp(1, end - 1).max(1);
        let whole = stats::window_stats(&log, SimTime::ZERO, SimTime::from_nanos(end));
        let first = stats::window_stats(&log, SimTime::ZERO, SimTime::from_nanos(cut));
        let second = stats::window_stats(&log, SimTime::from_nanos(cut), SimTime::from_nanos(end));
        for &k in SpanKind::ALL.iter() {
            prop_assert_eq!(whole.breakdown.get(k), per_kind.get(k));
            prop_assert_eq!(
                first.breakdown.get(k) + second.breakdown.get(k),
                whole.breakdown.get(k)
            );
        }
    }

    /// Critical-path invariants over arbitrary traces: whatever spans and
    /// cross edges are thrown at it (including backwards timestamps, which
    /// `join` clamps, and same-instant handoffs), the graph's node order
    /// stays topological — every extracted hop moves strictly forward, so
    /// the path is acyclic — the hops chain contiguously, time never
    /// decreases along the path, the attribution total never exceeds the
    /// makespan, and the ×1.0 what-if reproduces the measured makespan.
    #[test]
    fn critical_path_is_acyclic_and_bounded_by_makespan(
        spans in proptest::collection::vec(
            (0usize..4usize, 0u64..10_000_000u64, 1u64..2_000_000u64, 0usize..18usize), 1..30),
        links in proptest::collection::vec(
            (0usize..4usize, 0usize..4usize, 0u64..12_000_000u64, 0u64..12_000_000u64, 0usize..5usize), 0..12),
        queues in proptest::collection::vec(
            (0usize..3usize, 0usize..4usize, 0usize..4usize, 0u64..12_000_000u64, 0u64..12_000_000u64), 0..8),
    ) {
        const LANES: [&str; 4] = ["sim/p0/comp", "sim/p0/send", "ana/q0/recv", "ana/q0/app"];
        const KINDS: [EdgeKind; 5] =
            [EdgeKind::Wire, EdgeKind::Eos, EdgeKind::Steal, EdgeKind::Gate, EdgeKind::Pfs];
        let mut log = TraceLog::new();
        let ids: Vec<_> = LANES.iter().map(|&l| log.lane(l)).collect();
        // A lane is one thread's timeline, so its spans never overlap
        // (the graph builder weighs intra segments by span overlap under
        // that invariant): lay each lane's spans out sequentially, the
        // generated start acting as a gap from the previous span.
        let mut cursor = [0u64; 4];
        for (l, gap, dur, k) in &spans {
            let kind = SpanKind::ALL[k % SpanKind::ALL.len()];
            let a = cursor[*l] + gap % 1_000_000;
            let b = a + dur;
            cursor[*l] = b;
            log.record(Span::new(
                ids[*l],
                kind,
                SimTime::from_nanos(a),
                SimTime::from_nanos(b),
            ));
        }
        let mut causal = CausalLog::new();
        for (i, (s, d, st, dt, k)) in links.iter().enumerate() {
            let kind = KINDS[k % KINDS.len()];
            causal.begin(kind, i as u64, LANES[*s], SimTime::from_nanos(*st));
            causal.end(kind, i as u64, LANES[*d], SimTime::from_nanos(*dt));
        }
        for (q, pl, cl, pt, ct) in &queues {
            let name = ["q/a", "q/b", "q/c"][*q];
            causal.queue_push(name, LANES[*pl], SimTime::from_nanos(*pt));
            causal.queue_pop(name, LANES[*cl], SimTime::from_nanos(*ct));
        }

        let graph = CausalGraph::build(&log, &causal);
        if let Some(path) = CriticalPath::extract(&graph) {
            prop_assert!(!path.hops.is_empty());
            for pair in path.hops.windows(2) {
                prop_assert_eq!(pair[0].dst, pair[1].src, "hops must chain contiguously");
            }
            for h in &path.hops {
                prop_assert!(h.src < h.dst, "topological order ⇒ acyclic path");
                prop_assert!(
                    graph.node(h.src).t <= graph.node(h.dst).t,
                    "time never decreases along the path"
                );
            }
            prop_assert!(
                path.attribution.total() <= graph.makespan(),
                "path weight {} exceeds makespan {}",
                path.attribution.total(),
                graph.makespan()
            );
            let wf = graph.what_if(Bucket::Comp, 1.0);
            let measured = graph.makespan().as_nanos() as f64;
            prop_assert!(
                (wf.predicted_ns - measured).abs() <= 1.0,
                "×1.0 what-if must reproduce the makespan: {} vs {measured}",
                wf.predicted_ns
            );
        }
    }
}

fn histogram_of(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    /// Histogram merge is associative and commutative: shards can be
    /// folded into the registry in any grouping and any order (threads
    /// exit in nondeterministic order) and the result is identical to a
    /// single-pass histogram over all observations.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(0u64..u64::MAX / 4, 0..40),
        ys in proptest::collection::vec(0u64..u64::MAX / 4, 0..40),
        zs in proptest::collection::vec(0u64..u64::MAX / 4, 0..40),
    ) {
        let (a, b, c) = (histogram_of(&xs), histogram_of(&ys), histogram_of(&zs));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "associativity");
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba, "commutativity");
        // And both equal the single-pass histogram.
        let all: Vec<u64> = xs.iter().chain(&ys).chain(&zs).copied().collect();
        prop_assert_eq!(&left, &histogram_of(&all), "merge == single pass");
    }

    /// The DES probe's series is monotone with samples on exact period
    /// boundaries, and cumulative counters never decrease along it —
    /// regardless of how event times interleave with the sampling grid.
    #[test]
    fn probe_series_is_monotone_on_the_virtual_clock(
        steps in proptest::collection::vec((1u64..5_000u64, 0u64..1_000u64), 1..50),
        period in 1u64..2_000u64,
    ) {
        let telemetry = Telemetry::on();
        let mut probe = Probe::new(SimTime::from_nanos(period));
        let mut now = SimTime::ZERO;
        for (advance, bytes) in &steps {
            now += SimTime::from_nanos(*advance);
            telemetry.add(CounterId::NetBytes, *bytes);
            telemetry.gauge_add(GaugeId::InboxDepth, (*bytes % 3) as i64 - 1);
            probe.poll(now, &telemetry);
        }
        let series = probe.finish(now, &telemetry);
        prop_assert!(!series.is_empty(), "finish() always samples");
        prop_assert!(series.is_monotone());
        // All but the final sample (stamped at `now`) sit on the grid.
        for p in &series.points[..series.len() - 1] {
            prop_assert_eq!(p.t.as_nanos() % period, 0, "off-boundary sample at {}", p.t);
        }
        let counters = series.counter_series(CounterId::NetBytes);
        prop_assert!(counters.windows(2).all(|w| w[0].1 <= w[1].1), "counters are cumulative");
        let total: u64 = steps.iter().map(|(_, b)| b).sum();
        prop_assert_eq!(counters.last().unwrap().1, total);
    }
}

proptest! {
    /// The wall-clock sampler's series is monotone and its cumulative
    /// counters never decrease, whatever the workload does in between.
    #[test]
    fn sampler_series_is_monotone_on_the_wall_clock(
        adds in proptest::collection::vec(1u64..1_000u64, 1..20),
    ) {
        let telemetry = Telemetry::on();
        let sampler = Sampler::spawn(
            telemetry.clone(),
            Arc::new(WallClock::default()),
            std::time::Duration::from_micros(200),
        );
        for v in &adds {
            telemetry.add(CounterId::NetBytes, *v);
            // Real-time pacing is the property under test (Sampler cadence).
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        let series = sampler.stop();
        prop_assert!(!series.is_empty(), "stop() always takes a final sample");
        prop_assert!(series.is_monotone());
        let counters = series.counter_series(CounterId::NetBytes);
        prop_assert!(counters.windows(2).all(|w| w[0].1 <= w[1].1), "counters are cumulative");
        prop_assert_eq!(counters.last().unwrap().1, adds.iter().sum::<u64>());
    }
}

/// The threaded block queue keeps FIFO order and loses nothing under a
/// randomized producer/stealer/consumer interleaving.
#[test]
fn block_queue_randomized_interleaving() {
    use std::sync::Arc;
    use zipper_core::BlockQueue;
    for trial in 0..10u64 {
        let q = Arc::new(BlockQueue::new(4));
        let n = 120u32;
        let qp = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let id = BlockId::new(Rank(0), StepId(trial), i);
                qp.push(Block::from_payload(
                    Rank(0),
                    StepId(trial),
                    i,
                    n,
                    GlobalPos::default(),
                    deterministic_payload(id, 16),
                ))
                .unwrap();
            }
            qp.close();
        });
        let qs = q.clone();
        let stealer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let (Some(b), _) = qs.steal(2) {
                got.push(b.id().idx);
            }
            got
        });
        let mut popped = Vec::new();
        while let (Some(b), _) = q.pop() {
            popped.push(b.id().idx);
        }
        producer.join().unwrap();
        let stolen = stealer.join().unwrap();
        let mut all: Vec<u32> = popped.iter().chain(stolen.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "trial {trial}");
        // Each consumer's view is individually FIFO (global order is split
        // between the two takers but never reordered within one).
        assert!(popped.windows(2).all(|w| w[0] < w[1]));
        assert!(stolen.windows(2).all(|w| w[0] < w[1]));
    }
}
