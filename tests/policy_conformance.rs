//! Differential conformance: the threaded runtime and the DES drive the
//! same `zipper-policy` kernel, so a run with identical workload
//! parameters must yield identical canonical decision traces on both
//! substrates — same routes in the same order, same steals, same EOS
//! fan-out, same store decisions. Timing may differ arbitrarily; the
//! decisions may not.
//!
//! Config A: source-affine, message-only (no writer thread).
//! Config B: round-robin + concurrent transfer + Preserve — a
//!           combination the DES could not express before the kernel
//!           refactor (its routing was hard-wired source-affine).
//! Config C: scripted partial stealing — a shared `BackpressureScript`
//!           pins the same interleaved steal/send schedule on both
//!           substrates (byte-identical canonical traces), and the
//!           recorded trace is checked against a pure-kernel replay of
//!           the observed take order.
//! Config D: degradation under a scripted `ChaosPlan` — transport faults
//!           (fail/drop/corrupt/delay), a Preserve-store write fault, and
//!           a swallowed EOS tripping the watchdog on both substrates.
//! Config E: recovery under a scripted `ChaosPlan` — a PFS write fault
//!           retiring and reviving the writer, and an application crash
//!           healed by a policy-arbitrated restart with Preserve replay.
//! Plus: a seeded chaos config (`ZIPPER_CHAOS_SEED`), a seeded gate
//!           config (`ZIPPER_GATE_SEED`), a `DropEos` plan in concurrent
//!           mode (per-channel EOS wires conform), and framed-TCP runs —
//!           plain and chaos-scripted — checked against the in-process
//!           mesh.

use std::sync::Arc;
use std::time::Duration;
use zipper_core::{Consumer, Producer};
use zipper_policy::{CanonicalTrace, Channel, PolicyEvent, ProducerPolicy, RetireReason};
use zipper_trace::{TraceMode, TraceSink};
use zipper_transports::spec::{sim_config, ClusterLayout, WorkflowSpec};
use zipper_transports::zipper::build_recorded;
use zipper_types::{
    BackpressureScript, ByteSize, ChaosEntity, ChaosFault, ChaosPlan, GateRule, GlobalPos,
    PreserveMode, Rank, RecoveryPolicy, RoutingPolicy, SimTime, StepId, WorkflowConfig,
};
use zipper_workflow::{
    run_workflow_chaos, run_workflow_recorded, NetworkOptions, StorageOptions, TraceOptions,
    WorkflowPolicies,
};

/// One conformance scenario, expressed substrate-independently.
#[derive(Clone)]
struct Scenario {
    producers: usize,
    consumers: usize,
    steps: u64,
    blocks_per_step: u64,
    producer_slots: usize,
    high_water_mark: usize,
    concurrent_transfer: bool,
    preserve: bool,
    routing: RoutingPolicy,
    /// Scripted faults, interpreted identically by both substrates.
    chaos: ChaosPlan,
    /// Self-healing budgets (writer revival, consumer restarts).
    recovery: RecoveryPolicy,
    /// EOS watchdog. The wall-clock value drives the threaded receiver;
    /// the DES uses a fixed 1 s *virtual* deadline — the clocks are not
    /// comparable across substrates, only the timeout *decision* is, and
    /// that is what the canonical traces compare.
    eos_timeout: Option<Duration>,
    /// Scripted backpressure gates, interpreted identically by both
    /// substrates (the threaded `GatedSender` and the DES NIC model).
    backpressure: Option<BackpressureScript>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            producers: 2,
            consumers: 2,
            steps: 2,
            blocks_per_step: 4,
            producer_slots: 16,
            high_water_mark: 8,
            concurrent_transfer: false,
            preserve: false,
            routing: RoutingPolicy::SourceAffine,
            chaos: ChaosPlan::new(),
            recovery: RecoveryPolicy::default(),
            eos_timeout: None,
            backpressure: None,
        }
    }
}

const BLOCK: u64 = 16 << 10;

impl Scenario {
    fn threaded_config(&self) -> WorkflowConfig {
        let mut c = WorkflowConfig {
            producers: self.producers,
            consumers: self.consumers,
            steps: self.steps,
            bytes_per_rank_step: ByteSize::bytes(self.blocks_per_step * BLOCK),
            ..Default::default()
        };
        c.tuning.block_size = ByteSize::bytes(BLOCK);
        c.tuning.producer_slots = self.producer_slots;
        c.tuning.high_water_mark = self.high_water_mark;
        c.tuning.concurrent_transfer = self.concurrent_transfer;
        c.tuning.preserve = if self.preserve {
            PreserveMode::Preserve
        } else {
            PreserveMode::NoPreserve
        };
        c.tuning.routing = self.routing;
        c.tuning.recovery = self.recovery;
        c.tuning.eos_timeout = self.eos_timeout;
        c
    }

    fn des_spec(&self) -> WorkflowSpec {
        let mut s = WorkflowSpec::synthetic(
            zipper_apps::Complexity::Linear,
            self.producers,
            self.consumers,
            self.blocks_per_step * BLOCK,
            BLOCK,
        );
        s.steps = self.steps;
        s.ranks_per_node = 2;
        s.producer_slots = self.producer_slots;
        s.high_water_mark = self.high_water_mark;
        s.concurrent_transfer = self.concurrent_transfer;
        s.preserve = self.preserve;
        s.routing = self.routing;
        s.chaos = (!self.chaos.is_empty()).then(|| self.chaos.clone());
        s.recovery = self.recovery;
        // See `Scenario::eos_timeout`: a fixed virtual deadline stands in
        // for the wall-clock one.
        s.virtual_eos_timeout = self.eos_timeout.map(|_| SimTime::from_nanos(1_000_000_000));
        s.backpressure = self.backpressure.clone();
        s
    }

    fn net_options(&self) -> NetworkOptions {
        match &self.backpressure {
            Some(script) => NetworkOptions::default().with_backpressure(script.clone()),
            None => NetworkOptions::default(),
        }
    }

    /// Run on the threaded substrate; return canonical traces by rank.
    fn run_threaded(&self) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
        let cfg = self.threaded_config();
        let steps = cfg.steps;
        let slab = cfg.bytes_per_rank_step.as_u64() as usize;
        let produce = move |rank: Rank, writer: &zipper_core::ZipperWriter| {
            for s in 0..steps {
                let payload = vec![rank.0 as u8; slab];
                writer.write_slab(StepId(s), GlobalPos::default(), payload.into());
            }
        };
        let consume = |_: Rank, reader: &zipper_core::ZipperReader| {
            while reader.read().is_some() {}
        };
        if self.chaos.is_empty() {
            let (report, _, policies): (_, Vec<()>, WorkflowPolicies) = run_workflow_recorded(
                &cfg,
                self.net_options(),
                StorageOptions::Memory,
                TraceOptions::default().with_policy(),
                produce,
                consume,
            );
            report.assert_complete();
            canonize(&policies)
        } else {
            let (report, _, policies): (_, Vec<()>, WorkflowPolicies) = run_workflow_chaos(
                &cfg,
                self.net_options(),
                StorageOptions::Memory,
                TraceOptions::default().with_policy(),
                &self.chaos,
                produce,
                consume,
            );
            // Injected faults surface as per-rank runtime errors by
            // design; the run itself must not lose an app rank.
            assert!(report.failures.is_empty(), "{:?}", report.failures);
            canonize(&policies)
        }
    }

    /// Run on the DES; return canonical traces by rank.
    fn run_des(&self) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
        let spec = self.des_spec();
        let layout = ClusterLayout::new(&spec, 0);
        let mut sim = hpcsim::Simulator::new(sim_config(&spec, &layout));
        let policies = build_recorded(&mut sim, &spec, &layout);
        let r = sim.run();
        assert!(r.is_clean(), "DES run not clean: {r:?}");
        (
            policies
                .producers
                .iter()
                .map(|p| p.borrow().trace().canonical())
                .collect(),
            policies
                .consumers
                .iter()
                .map(|c| c.borrow().trace().canonical())
                .collect(),
        )
    }
}

fn canonize(policies: &WorkflowPolicies) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
    (
        policies
            .producers
            .iter()
            .map(|p| p.lock().trace().canonical())
            .collect(),
        policies
            .consumers
            .iter()
            .map(|c| c.lock().trace().canonical())
            .collect(),
    )
}

fn assert_same(
    name: &str,
    threaded: &(Vec<CanonicalTrace>, Vec<CanonicalTrace>),
    des: &(Vec<CanonicalTrace>, Vec<CanonicalTrace>),
) {
    for (p, (t, d)) in threaded.0.iter().zip(&des.0).enumerate() {
        assert_eq!(t, d, "{name}: producer {p} decision traces diverge");
    }
    for (q, (t, d)) in threaded.1.iter().zip(&des.1).enumerate() {
        assert_eq!(t, d, "{name}: consumer {q} decision traces diverge");
    }
}

/// Config A: source-affine, message-only. Both substrates route every
/// block of producer `p` to consumer `p % Q` in production order and
/// announce a single-channel EOS; canonical traces must match exactly.
#[test]
fn source_affine_message_only_traces_match() {
    let sc = Scenario {
        producers: 4,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 8,
        high_water_mark: 4,
        concurrent_transfer: false,
        preserve: false,
        routing: RoutingPolicy::SourceAffine,
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes all its blocks");
        assert!(t.steals.is_empty(), "message-only mode never steals");
    }
    assert_same("config A", &threaded, &des);
}

/// Config B: round-robin + concurrent transfer + Preserve — the
/// combination the DES could not express before the policy kernel. The
/// high-water mark sits at the rank's whole-run block count, so the
/// writer provably never wakes and the shared round-robin rotation is
/// the only routing influence: take order equals production order on
/// both substrates, and the traces must match exactly.
#[test]
fn round_robin_concurrent_preserve_traces_match() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // == total blocks per rank: occupancy can never exceed it
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert!(
            t.steals.is_empty(),
            "producer {p}: hwm at run size, no steals"
        );
        assert_eq!(t.retires, vec![RetireReason::Drained]);
        for (k, (_, dest, channel)) in t.routes.iter().enumerate() {
            assert_eq!(dest.idx(), k % 2, "producer {p} deals round-robin");
            assert_eq!(*channel, Channel::Net);
        }
        // Dual-channel EOS fan-out to every consumer.
        assert_eq!(t.eos_announced.len(), 4);
    }
    for (q, t) in threaded.1.iter().enumerate() {
        assert_eq!(
            t.eos_seen.len(),
            4,
            "consumer {q}: 2 producers × 2 channels"
        );
        assert!(
            t.stores.iter().all(|&(_, s)| s),
            "Preserve stores everything"
        );
    }
    assert_same("config B", &threaded, &des);
}

/// Replay a recorded decision sequence into a fresh kernel and return
/// the replay's canonical trace. Proves the trace is substrate-free: the
/// kernel reproduces it exactly from the observed take order alone.
fn replay(live: &ProducerPolicy) -> CanonicalTrace {
    let mut fresh = ProducerPolicy::new(
        live.rank(),
        live.consumers(),
        RoutingPolicy::RoundRobin,
        0,
        true,
    )
    .recorded();
    let mut announced: Vec<Channel> = Vec::new();
    for ev in live.trace().events() {
        match *ev {
            PolicyEvent::Route {
                block,
                channel: Channel::Net,
                ..
            } => {
                fresh.route_net(block);
            }
            PolicyEvent::Route {
                block,
                channel: Channel::Disk,
                ..
            } => {
                fresh.route_disk(block);
            }
            // Recorded as a side effect of route_disk in the replay.
            PolicyEvent::Steal { .. } => {}
            PolicyEvent::WriterRetired { reason } => fresh.writer_retired(reason),
            PolicyEvent::EosAnnounced { channel, .. } => {
                if !announced.contains(&channel) {
                    announced.push(channel);
                    fresh.announce_eos(channel);
                }
            }
            ref other => panic!("unexpected producer event {other:?}"),
        }
    }
    fresh.trace().canonical()
}

/// The Config C backpressure script: wire 2 held until 3 cumulative
/// steals, wire 4 until a 4th — applied to every producer rank.
fn config_c_script(producers: usize) -> BackpressureScript {
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        script = script
            .with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3))
            .with(Rank(p as u32), 4, GateRule::OpenAfterSteals(4));
    }
    script
}

/// Config C: scripted partial stealing. The high-water mark sits at the
/// rank's whole-run block count so Algorithm 1 never steals on its own;
/// the backpressure script then pins the exact interleaved schedule
/// b0 b1 | b2 b3 b4 stolen | b5 b6 | b7 stolen on both substrates —
/// some blocks stolen, some sent, byte-identical canonical traces. The
/// recorded trace must also be exactly reproducible by a fresh kernel
/// replaying the observed take order (substrate-free by construction).
#[test]
fn scripted_steal_traces_match_and_replay_exactly() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // == total blocks per rank: no unscripted steals
        concurrent_transfer: true,
        preserve: false,
        routing: RoutingPolicy::RoundRobin,
        backpressure: Some(config_c_script(2)),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes every block");
        let stolen: Vec<usize> = t
            .routes
            .iter()
            .enumerate()
            .filter(|(_, (_, _, ch))| *ch == Channel::Disk)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(stolen, vec![2, 3, 4, 7], "producer {p} steal schedule");
        assert_eq!(t.steals.len(), 4);
        assert_eq!(t.retires, vec![RetireReason::Drained]);
        // Shared rotation: the deal order covers both consumers
        // alternately regardless of channel.
        for (k, (_, dest, _)) in t.routes.iter().enumerate() {
            assert_eq!(dest.idx(), k % 2, "producer {p} round-robin rotation");
        }
    }
    let des = sc.run_des();
    assert_same("config C", &threaded, &des);

    // Replay check, against the live DES kernels (the threaded harness
    // only surfaces canonical traces; the kernels are the same type).
    let spec = sc.des_spec();
    let layout = ClusterLayout::new(&spec, 0);
    let mut sim = hpcsim::Simulator::new(sim_config(&spec, &layout));
    let policies = build_recorded(&mut sim, &spec, &layout);
    assert!(sim.run().is_clean());
    for p in &policies.producers {
        let live = p.borrow();
        assert_eq!(
            replay(&live),
            live.trace().canonical(),
            "kernel replay reproduces the scripted trace"
        );
    }
}

/// Config D: degradation. One `ChaosPlan` mixing transport faults
/// (fail/drop/corrupt/delay), a Preserve-store write fault, and a
/// swallowed EOS runs on both substrates; the pipelines degrade through
/// the same decision sequence — identical routes, identical surviving
/// store set, and the same consumer tripping its watchdog.
///
/// Message-only mode: production order equals wire order, so sender
/// ordinals are deterministic.
#[test]
fn chaos_degradation_traces_match() {
    let sc = Scenario {
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        eos_timeout: Some(Duration::from_millis(300)),
        // Each producer sends 8 data wires (ordinals 1..=8) then EOS to
        // consumer 0 (#9) and consumer 1 (#10) — except sender 1, whose
        // wire #1 FailSend kills destination 0: its later data wires to
        // consumer 0 are skipped uncounted, compacting its ordinals.
        chaos: ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(ChaosEntity::Sender(Rank(0)), 4, ChaosFault::CorruptWire)
            .with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::FailSend)
            .with(
                ChaosEntity::Sender(Rank(1)),
                3,
                ChaosFault::DelayWire(Duration::from_millis(2)),
            )
            .with(ChaosEntity::Output(Rank(0)), 2, ChaosFault::PfsWriteFail),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for t in &threaded.0 {
        assert_eq!(t.routes.len(), 8, "routing is decided before the wire");
    }
    let c0 = &threaded.1[0];
    assert_eq!(c0.eos_seen.len(), 1, "producer 0's EOS was swallowed");
    assert_eq!(c0.timeouts, 1, "the watchdog fired");
    assert_eq!(c0.completions, 0);
    // Consumer 0 keeps producer 0's surviving even-ordinal blocks (wires
    // 1,3,5,7) and nothing from the dead-destination producer 1.
    assert_eq!(c0.stores.len(), 4, "{:?}", c0.stores);
    let c1 = &threaded.1[1];
    assert_eq!(c1.eos_seen.len(), 2);
    assert_eq!(c1.completions, 1, "consumer 1 still completes");
    assert_eq!(c1.timeouts, 0);
    // Producer 0's wires 2 (dropped) and 4 (corrupt) never arrive;
    // producer 1's four surviving wires all land here.
    assert_eq!(c1.stores.len(), 6, "{:?}", c1.stores);
    assert_same("config D", &threaded, &des);
}

/// Config E: recovery. A PFS write fault retires producer 0's writer,
/// which the policy kernel revives after a cooldown
/// (`WriterRetired(Fault)` → `WriterRevived` → `WriterRetired(Drained)`);
/// a scripted crash kills consumer 1 on read #3 and the restart
/// supervisor replays its 2-block backlog from the Preserve store. Both
/// substrates must degrade *and heal* through identical decision traces.
///
/// Senders are detached (blocks drain through the work-stealing writer
/// in production order), which makes writer put-ordinals deterministic
/// on the threaded substrate.
#[test]
fn chaos_recovery_traces_match() {
    let sc = Scenario {
        high_water_mark: 0,
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        recovery: RecoveryPolicy {
            writer_cooldown: Duration::from_millis(1),
            max_writer_revivals: 1,
            max_consumer_restarts: 1,
        },
        chaos: ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 1, ChaosFault::DetachSender)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::DetachSender)
            // Benign: the EOS wire to consumer 1 arrives late. It must
            // not shift any decision.
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_millis(1)),
            )
            .with(ChaosEntity::Writer(Rank(0)), 2, ChaosFault::PfsWriteFail)
            .with(ChaosEntity::Analysis(Rank(1)), 3, ChaosFault::CrashApp),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    let p0 = &threaded.0[0];
    assert_eq!(
        p0.retires,
        vec![RetireReason::Fault, RetireReason::Drained],
        "fault retire, then the revived writer drains to the end"
    );
    assert_eq!(p0.revivals, 1);
    assert_eq!(
        p0.routes.len(),
        9,
        "the faulted block is requeued and routed again"
    );
    let p1 = &threaded.0[1];
    assert_eq!(p1.retires, vec![RetireReason::Drained]);
    assert_eq!(p1.revivals, 0);
    assert_eq!(p1.routes.len(), 8);
    let c1 = &threaded.1[1];
    assert!(c1.abandoned, "the crash was accounted");
    assert_eq!(c1.restarts, vec![2], "read #3 crashed with 2 delivered");
    assert_eq!(c1.completions, 1, "EOS reconciles across the restart");
    let c0 = &threaded.1[0];
    assert!(!c0.abandoned);
    assert_eq!(c0.restarts, Vec::<usize>::new());
    assert_eq!(c0.completions, 1);
    assert_same("config E", &threaded, &des);
}

/// Seed for the seeded chaos config — the CI chaos job sweeps this over
/// a small matrix (`ZIPPER_CHAOS_SEED=1..3`).
fn chaos_seed() -> u64 {
    std::env::var("ZIPPER_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// splitmix64: tiny, deterministic, and good enough to decorrelate the
/// per-producer ordinals derived from one seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Seeded chaos: fault ordinals and kinds are derived from
/// `ZIPPER_CHAOS_SEED` (mixed into the safe data-wire range 1..=8), so
/// the CI seed matrix explores different scripted schedules while every
/// individual run stays fully deterministic — any seed must conform.
#[test]
fn seeded_transport_chaos_traces_match() {
    let mut state = chaos_seed();
    let kinds = [
        ChaosFault::DropWire,
        ChaosFault::CorruptWire,
        ChaosFault::DelayWire(Duration::from_micros(200)),
        ChaosFault::FailSend,
    ];
    let producers = 4usize;
    let mut plan = ChaosPlan::new();
    for p in 0..producers {
        let ordinal = 1 + splitmix(&mut state) % 8; // data wires only
        let kind = kinds[(splitmix(&mut state) % kinds.len() as u64) as usize];
        plan = plan.with(ChaosEntity::Sender(Rank(p as u32)), ordinal, kind);
    }
    let sc = Scenario {
        producers,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        chaos: plan,
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes all its blocks");
    }
    assert_same(&format!("seeded (seed {})", chaos_seed()), &threaded, &des);
}

/// A `DropEos` plan in concurrent-transfer mode: both substrates send
/// per-channel EOS wires and count only data wires and net-channel marks
/// against sender ordinals, so swallowing producer 0's stream-EOS to
/// consumer 0 (ordinal 9) trips the same watchdog on both substrates
/// while the disk channel's marks still arrive.
#[test]
fn chaos_dropped_eos_concurrent_traces_match() {
    let sc = Scenario {
        concurrent_transfer: true,
        routing: RoutingPolicy::SourceAffine,
        eos_timeout: Some(Duration::from_millis(300)),
        // 8 data wires (ordinals 1..=8), then net-EOS to consumer 0 (#9,
        // swallowed) and consumer 1 (#10). Disk-channel marks after the
        // writer drains are uncounted on both substrates.
        chaos: ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    let c0 = &threaded.1[0];
    assert_eq!(c0.eos_seen.len(), 3, "producer 0's net mark was swallowed");
    assert_eq!(c0.timeouts, 1, "the watchdog reconciled the tracker");
    assert_eq!(c0.completions, 0);
    let c1 = &threaded.1[1];
    assert_eq!(c1.eos_seen.len(), 4);
    assert_eq!(c1.completions, 1);
    assert_eq!(c1.timeouts, 0);
    assert_same("dropped EOS, concurrent", &threaded, &des);
}

/// Seed for the seeded gate config — the CI job sweeps this over a small
/// matrix (`ZIPPER_GATE_SEED=1..3`).
fn gate_seed() -> u64 {
    std::env::var("ZIPPER_GATE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Seeded backpressure: each producer gets one credit window whose wire
/// ordinal and steal target derive from `ZIPPER_GATE_SEED`, kept inside
/// the 8-block run so the window always arms and always leaves the
/// sender blocks to finish with. Any seed must produce byte-identical
/// canonical traces across substrates.
#[test]
fn seeded_backpressure_gate_traces_match() {
    let mut state = gate_seed().wrapping_mul(0x5851_f42d_4c95_7f2d);
    let producers = 2usize;
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        let wire = 1 + splitmix(&mut state) % 3; // 1..=3
        let target = 1 + splitmix(&mut state) % (8 - wire - 1);
        script = script.with(Rank(p as u32), wire, GateRule::OpenAfterSteals(target));
    }
    let sc = Scenario {
        producers,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // no unscripted steals
        concurrent_transfer: true,
        routing: RoutingPolicy::RoundRobin,
        backpressure: Some(script),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes all its blocks");
        assert!(!t.steals.is_empty(), "producer {p}'s window armed");
    }
    assert_same(
        &format!("seeded gate (seed {})", gate_seed()),
        &threaded,
        &des,
    );
}

/// Composition on a single wire: each producer's data wire #2 is both
/// held by a backpressure gate window (until 3 cumulative steals) and
/// scripted by a chaos ordinal (producer 0: dropped; producer 1:
/// delayed). Both substrates order the mechanisms gate-before-chaos —
/// the threaded `GatedSender` wraps outermost around the `ChaosSender`,
/// and the DES ticks gate ordinals before the chaos scope consults its
/// own — so the held wire still burns its fault ordinal on release and
/// the fault lands on the same block everywhere: canonical decision
/// traces must stay byte-identical.
#[test]
fn gate_and_chaos_compose_on_the_same_wire() {
    let producers = 2usize;
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        script = script.with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3));
    }
    let sc = Scenario {
        producers,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // no unscripted steals
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        backpressure: Some(script),
        chaos: ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_micros(200)),
            ),
        ..Scenario::default()
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes all its blocks");
        assert!(
            t.steals.len() >= 3,
            "producer {p}'s window armed and its credit target was met: {:?}",
            t.steals
        );
    }
    assert_same("gate+chaos same wire", &threaded, &des);
}

/// Run `sc` over real loopback sockets (framed TCP) and return canonical
/// traces by rank. Sender-entity chaos is honoured by wrapping each
/// producer's [`zipper_core::TcpSender`] in a [`zipper_core::ChaosSender`]
/// — the same wrapper the mesh driver uses, counting the same ordinals.
/// Injected faults surface as per-rank runtime errors by design, so
/// runtime error lists are only asserted empty for fault-free runs.
fn run_tcp(sc: &Scenario) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
    use parking_lot::Mutex;
    use zipper_core::{listen_consumers, ChaosSender, TcpSender, WireSender};
    use zipper_policy::ConsumerPolicy;

    let cfg = sc.threaded_config();
    let tuning = cfg.tuning;
    let sink = TraceSink::wall(TraceMode::Off);
    let storage: Arc<dyn zipper_pfs::Storage> = Arc::new(zipper_pfs::MemFs::new());
    let (addrs, receivers) = listen_consumers(sc.consumers, sc.producers).unwrap();

    let mut consumer_policies = Vec::new();
    let mut consumers = Vec::new();
    let mut drains = Vec::new();
    for (q, rx) in receivers.into_iter().enumerate() {
        let rank = Rank(q as u32);
        let policy = Arc::new(Mutex::new(
            ConsumerPolicy::from_tuning(rank, sc.producers, &tuning).recorded(),
        ));
        consumer_policies.push(policy.clone());
        let mut c = Consumer::spawn_with_policy(
            rank,
            tuning,
            sc.producers,
            rx,
            storage.clone(),
            sink.clone(),
            policy,
        );
        let reader = c.reader();
        consumers.push(c);
        drains.push(std::thread::spawn(move || while reader.read().is_some() {}));
    }

    let slab = cfg.bytes_per_rank_step.as_u64() as usize;
    let mut producer_policies = Vec::new();
    let mut producer_apps = Vec::new();
    let mut producer_runtimes = Vec::new();
    for p in 0..sc.producers {
        let rank = Rank(p as u32);
        let policy = Arc::new(Mutex::new(
            ProducerPolicy::from_tuning(rank, sc.consumers, &tuning).recorded(),
        ));
        producer_policies.push(policy.clone());
        let tcp = TcpSender::connect(&addrs).unwrap();
        let sender: Box<dyn WireSender> = if sc.chaos.is_empty() {
            Box::new(tcp)
        } else {
            Box::new(ChaosSender::new(
                tcp,
                Arc::new(sc.chaos.scope(ChaosEntity::Sender(rank))),
            ))
        };
        let mut prod = Producer::spawn_with_policy(
            rank,
            tuning,
            sender,
            storage.clone(),
            sink.clone(),
            policy,
        );
        let writer = prod.writer(BLOCK as usize);
        producer_runtimes.push(prod);
        let steps = sc.steps;
        producer_apps.push(std::thread::spawn(move || {
            for s in 0..steps {
                let payload = vec![rank.0 as u8; slab];
                writer.write_slab(StepId(s), GlobalPos::default(), payload.into());
            }
            writer.finish();
        }));
    }

    for h in producer_apps {
        h.join().unwrap();
    }
    for prod in producer_runtimes {
        let pm = prod.join();
        if sc.chaos.is_empty() {
            assert!(pm.errors.is_empty(), "{:?}", pm.errors);
        }
    }
    for d in drains {
        d.join().unwrap();
    }
    for c in consumers {
        let cm = c.join();
        if sc.chaos.is_empty() {
            assert!(cm.errors.is_empty(), "{:?}", cm.errors);
        }
    }

    (
        producer_policies
            .iter()
            .map(|p| p.lock().trace().canonical())
            .collect(),
        consumer_policies
            .iter()
            .map(|c| c.lock().trace().canonical())
            .collect(),
    )
}

/// The framed-TCP transport must be decision-invisible: the same
/// workload over real loopback sockets yields the same canonical traces
/// as the in-process mesh (Config B's scenario). Closes the ROADMAP item
/// on extending conformance to the TCP path.
#[test]
fn tcp_transport_matches_mesh_canonical_traces() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // == run size: the writer never wakes
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        ..Scenario::default()
    };
    let mesh_traces = sc.run_threaded();
    let tcp_traces = run_tcp(&sc);
    assert_same("tcp vs mesh", &tcp_traces, &mesh_traces);
}

/// Scripted sender chaos over framed TCP: the same ordinal plan the mesh
/// interprets in-process — dropped and corrupted wires, a delayed wire, a
/// failed send — must degrade the TCP run through identical decision
/// traces. Corrupt wires travel as real garbage frames (an in-band
/// transport fault the stream survives), exercising
/// `TcpSender::send_fault`.
///
/// `DropEos` + the virtual watchdog is deliberately *not* in this plan:
/// over TCP the producer's exit closes the socket, so the consumer
/// observes a disconnect before the EOS timeout can fire, while the
/// in-process mesh stays open and trips the watchdog — a real (and
/// documented) transport-visible difference in shutdown, not a policy
/// divergence.
#[test]
fn tcp_scripted_chaos_matches_mesh_canonical_traces() {
    let sc = Scenario {
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        chaos: ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(ChaosEntity::Sender(Rank(0)), 4, ChaosFault::CorruptWire)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::FailSend)
            .with(
                ChaosEntity::Sender(Rank(1)),
                3,
                ChaosFault::DelayWire(Duration::from_millis(2)),
            ),
        ..Scenario::default()
    };
    let mesh_traces = sc.run_threaded();
    let tcp_traces = run_tcp(&sc);
    assert_same("tcp chaos vs mesh", &tcp_traces, &mesh_traces);
}
