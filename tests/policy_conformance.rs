//! Differential conformance: the threaded runtime and the DES drive the
//! same `zipper-policy` kernel, so a run with identical workload
//! parameters must yield identical canonical decision traces on both
//! substrates — same routes in the same order, same steals, same EOS
//! fan-out, same store decisions. Timing may differ arbitrarily; the
//! decisions may not.
//!
//! Config A: source-affine, message-only (no writer thread).
//! Config B: round-robin + concurrent transfer + Preserve — a
//!           combination the DES could not express before the kernel
//!           refactor (its routing was hard-wired source-affine).
//! Config C: forced stealing on the threaded substrate (a gated sender
//!           starves the net channel), checked against a pure-kernel
//!           replay of the observed take order.

use std::sync::Arc;
use std::time::Duration;
use zipper_core::{ChannelMesh, Consumer, Producer, Wire, WireSender};
use zipper_policy::{CanonicalTrace, Channel, PolicyEvent, ProducerPolicy, RetireReason};
use zipper_trace::{TraceMode, TraceSink};
use zipper_transports::spec::{sim_config, ClusterLayout, WorkflowSpec};
use zipper_transports::zipper::build_recorded;
use zipper_types::{
    ByteSize, GlobalPos, PreserveMode, Rank, RoutingPolicy, StepId, WorkflowConfig,
};
use zipper_workflow::{
    run_workflow_recorded, NetworkOptions, StorageOptions, TraceOptions, WorkflowPolicies,
};

/// One conformance scenario, expressed substrate-independently.
#[derive(Clone, Copy)]
struct Scenario {
    producers: usize,
    consumers: usize,
    steps: u64,
    blocks_per_step: u64,
    producer_slots: usize,
    high_water_mark: usize,
    concurrent_transfer: bool,
    preserve: bool,
    routing: RoutingPolicy,
}

const BLOCK: u64 = 16 << 10;

impl Scenario {
    fn threaded_config(&self) -> WorkflowConfig {
        let mut c = WorkflowConfig {
            producers: self.producers,
            consumers: self.consumers,
            steps: self.steps,
            bytes_per_rank_step: ByteSize::bytes(self.blocks_per_step * BLOCK),
            ..Default::default()
        };
        c.tuning.block_size = ByteSize::bytes(BLOCK);
        c.tuning.producer_slots = self.producer_slots;
        c.tuning.high_water_mark = self.high_water_mark;
        c.tuning.concurrent_transfer = self.concurrent_transfer;
        c.tuning.preserve = if self.preserve {
            PreserveMode::Preserve
        } else {
            PreserveMode::NoPreserve
        };
        c.tuning.routing = self.routing;
        c
    }

    fn des_spec(&self) -> WorkflowSpec {
        let mut s = WorkflowSpec::synthetic(
            zipper_apps::Complexity::Linear,
            self.producers,
            self.consumers,
            self.blocks_per_step * BLOCK,
            BLOCK,
        );
        s.steps = self.steps;
        s.ranks_per_node = 2;
        s.producer_slots = self.producer_slots;
        s.high_water_mark = self.high_water_mark;
        s.concurrent_transfer = self.concurrent_transfer;
        s.preserve = self.preserve;
        s.routing = self.routing;
        s
    }

    /// Run on the threaded substrate; return canonical traces by rank.
    fn run_threaded(&self) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
        let cfg = self.threaded_config();
        let steps = cfg.steps;
        let slab = cfg.bytes_per_rank_step.as_u64() as usize;
        let (report, _, policies): (_, Vec<()>, WorkflowPolicies) = run_workflow_recorded(
            &cfg,
            NetworkOptions::default(),
            StorageOptions::Memory,
            TraceOptions::default().with_policy(),
            move |rank, writer| {
                for s in 0..steps {
                    let payload = vec![rank.0 as u8; slab];
                    writer.write_slab(StepId(s), GlobalPos::default(), payload.into());
                }
            },
            |_, reader| while reader.read().is_some() {},
        );
        report.assert_complete();
        canonize(&policies)
    }

    /// Run on the DES; return canonical traces by rank.
    fn run_des(&self) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
        let spec = self.des_spec();
        let layout = ClusterLayout::new(&spec, 0);
        let mut sim = hpcsim::Simulator::new(sim_config(&spec, &layout));
        let policies = build_recorded(&mut sim, &spec, &layout);
        let r = sim.run();
        assert!(r.is_clean(), "DES run not clean: {r:?}");
        (
            policies
                .producers
                .iter()
                .map(|p| p.borrow().trace().canonical())
                .collect(),
            policies
                .consumers
                .iter()
                .map(|c| c.borrow().trace().canonical())
                .collect(),
        )
    }
}

fn canonize(policies: &WorkflowPolicies) -> (Vec<CanonicalTrace>, Vec<CanonicalTrace>) {
    (
        policies
            .producers
            .iter()
            .map(|p| p.lock().trace().canonical())
            .collect(),
        policies
            .consumers
            .iter()
            .map(|c| c.lock().trace().canonical())
            .collect(),
    )
}

fn assert_same(
    name: &str,
    threaded: &(Vec<CanonicalTrace>, Vec<CanonicalTrace>),
    des: &(Vec<CanonicalTrace>, Vec<CanonicalTrace>),
) {
    for (p, (t, d)) in threaded.0.iter().zip(&des.0).enumerate() {
        assert_eq!(t, d, "{name}: producer {p} decision traces diverge");
    }
    for (q, (t, d)) in threaded.1.iter().zip(&des.1).enumerate() {
        assert_eq!(t, d, "{name}: consumer {q} decision traces diverge");
    }
}

/// Config A: source-affine, message-only. Both substrates route every
/// block of producer `p` to consumer `p % Q` in production order and
/// announce a single-channel EOS; canonical traces must match exactly.
#[test]
fn source_affine_message_only_traces_match() {
    let sc = Scenario {
        producers: 4,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 8,
        high_water_mark: 4,
        concurrent_transfer: false,
        preserve: false,
        routing: RoutingPolicy::SourceAffine,
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert_eq!(t.routes.len(), 8, "producer {p} routes all its blocks");
        assert!(t.steals.is_empty(), "message-only mode never steals");
    }
    assert_same("config A", &threaded, &des);
}

/// Config B: round-robin + concurrent transfer + Preserve — the
/// combination the DES could not express before the policy kernel. The
/// high-water mark sits at the rank's whole-run block count, so the
/// writer provably never wakes and the shared round-robin rotation is
/// the only routing influence: take order equals production order on
/// both substrates, and the traces must match exactly.
#[test]
fn round_robin_concurrent_preserve_traces_match() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // == total blocks per rank: occupancy can never exceed it
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
    };
    let threaded = sc.run_threaded();
    let des = sc.run_des();
    for (p, t) in threaded.0.iter().enumerate() {
        assert!(
            t.steals.is_empty(),
            "producer {p}: hwm at run size, no steals"
        );
        assert_eq!(t.retires, vec![RetireReason::Drained]);
        for (k, (_, dest, channel)) in t.routes.iter().enumerate() {
            assert_eq!(dest.idx(), k % 2, "producer {p} deals round-robin");
            assert_eq!(*channel, Channel::Net);
        }
        // Dual-channel EOS fan-out to every consumer.
        assert_eq!(t.eos_announced.len(), 4);
    }
    for (q, t) in threaded.1.iter().enumerate() {
        assert_eq!(
            t.eos_seen.len(),
            4,
            "consumer {q}: 2 producers × 2 channels"
        );
        assert!(
            t.stores.iter().all(|&(_, s)| s),
            "Preserve stores everything"
        );
    }
    assert_same("config B", &threaded, &des);
}

/// A sender that refuses to move data until the PFS holds `open_at`
/// blocks — starving the net channel so the writer thread must steal.
struct GatedSender<S: WireSender> {
    inner: S,
    storage: Arc<dyn zipper_pfs::Storage>,
    open_at: usize,
}

impl<S: WireSender> WireSender for GatedSender<S> {
    fn send(&self, to: Rank, wire: Wire) -> zipper_types::Result<()> {
        if matches!(wire, Wire::Msg(_)) {
            while self.storage.len() < self.open_at {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.inner.send(to, wire)
    }

    fn consumers(&self) -> usize {
        self.inner.consumers()
    }
}

/// Replay a recorded decision sequence into a fresh kernel and return
/// the replay's canonical trace. Proves the trace is substrate-free: the
/// kernel reproduces it exactly from the observed take order alone.
fn replay(live: &ProducerPolicy) -> CanonicalTrace {
    let mut fresh = ProducerPolicy::new(
        live.rank(),
        live.consumers(),
        RoutingPolicy::RoundRobin,
        0,
        true,
    )
    .recorded();
    let mut announced: Vec<Channel> = Vec::new();
    for ev in live.trace().events() {
        match *ev {
            PolicyEvent::Route {
                block,
                channel: Channel::Net,
                ..
            } => {
                fresh.route_net(block);
            }
            PolicyEvent::Route {
                block,
                channel: Channel::Disk,
                ..
            } => {
                fresh.route_disk(block);
            }
            // Recorded as a side effect of route_disk in the replay.
            PolicyEvent::Steal { .. } => {}
            PolicyEvent::WriterRetired { reason } => fresh.writer_retired(reason),
            PolicyEvent::EosAnnounced { channel, .. } => {
                if !announced.contains(&channel) {
                    announced.push(channel);
                    fresh.announce_eos(channel);
                }
            }
            ref other => panic!("unexpected producer event {other:?}"),
        }
    }
    fresh.trace().canonical()
}

/// Config C: forced stealing. A gated sender keeps the net channel shut
/// until the writer has stolen all but one block, so the disk channel
/// demonstrably carries traffic; the recorded trace must then be exactly
/// reproducible by a fresh kernel replaying the observed take order.
#[test]
fn forced_steal_trace_replays_exactly() {
    let blocks: u64 = 6;
    let mut tuning = zipper_types::ZipperTuning {
        block_size: ByteSize::bytes(BLOCK),
        producer_slots: 8,
        high_water_mark: 0,
        concurrent_transfer: true,
        preserve: PreserveMode::NoPreserve,
        routing: RoutingPolicy::RoundRobin,
        ..Default::default()
    };
    tuning.eos_timeout = Some(Duration::from_secs(30));

    let sink = TraceSink::wall(TraceMode::Off);
    let storage: Arc<dyn zipper_pfs::Storage> = Arc::new(zipper_pfs::MemFs::new());
    let mesh = ChannelMesh::new(2, 4);

    // Consumers first, so inboxes drain from the start.
    let mut consumers = Vec::new();
    let mut drains = Vec::new();
    for q in 0..2u32 {
        let rx = mesh.take_receiver(Rank(q)).unwrap();
        let mut c = Consumer::spawn_traced(Rank(q), tuning, 1, rx, storage.clone(), sink.clone());
        let reader = c.reader();
        consumers.push(c);
        drains.push(std::thread::spawn(move || while reader.read().is_some() {}));
    }

    let policy = Arc::new(parking_lot::Mutex::new(
        ProducerPolicy::from_tuning(Rank(0), 2, &tuning).recorded(),
    ));
    let gated = GatedSender {
        inner: mesh.sender(),
        storage: storage.clone(),
        open_at: blocks as usize - 1,
    };
    let mut prod = Producer::spawn_with_policy(
        Rank(0),
        tuning,
        gated,
        storage.clone(),
        sink.clone(),
        policy.clone(),
    );
    let writer = prod.writer(BLOCK as usize);
    for s in 0..blocks {
        // One block per step keeps production order unambiguous.
        writer.write_slab(
            StepId(s),
            GlobalPos::default(),
            vec![s as u8; BLOCK as usize].into(),
        );
    }
    writer.finish();
    let pm = prod.join();
    assert!(pm.errors.is_empty(), "{:?}", pm.errors);
    for d in drains {
        d.join().unwrap();
    }
    for c in consumers {
        let cm = c.join();
        assert!(cm.errors.is_empty(), "{:?}", cm.errors);
    }

    let live = policy.lock();
    let canon = live.trace().canonical();
    assert_eq!(canon.routes.len() as u64, blocks, "every block routed once");
    assert!(
        canon.steals.len() as u64 >= blocks - 1,
        "gate forces the writer to steal all but at most one block: {canon:?}"
    );
    // Shared rotation: the deal order covers both consumers alternately
    // regardless of channel.
    for (k, (_, dest, _)) in canon.routes.iter().enumerate() {
        assert_eq!(dest.idx(), k % 2, "shared round-robin rotation");
    }
    assert_eq!(replay(&live), canon, "kernel replay reproduces the trace");
}
