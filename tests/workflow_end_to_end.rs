//! Cross-crate integration tests of the real (threaded) Zipper runtime:
//! application → workflow driver → producer/consumer modules → transport
//! and storage, verified end to end.

use bytes::Bytes;
use std::collections::HashSet;
use std::time::Duration;
use zipper_types::block::deterministic_payload;
use zipper_types::{
    Block, BlockId, ByteSize, GlobalPos, PreserveMode, Rank, StepId, WorkflowConfig,
};
use zipper_workflow::{run_workflow, NetworkOptions, StorageOptions};

fn base_cfg() -> WorkflowConfig {
    let mut cfg = WorkflowConfig {
        producers: 4,
        consumers: 2,
        steps: 6,
        bytes_per_rank_step: ByteSize::kib(96),
        ..Default::default()
    };
    cfg.tuning.block_size = ByteSize::kib(16);
    cfg.tuning.producer_slots = 8;
    cfg.tuning.high_water_mark = 5;
    cfg
}

/// Producer emitting deterministic, verifiable blocks.
fn verifiable_producer(
    cfg: &WorkflowConfig,
) -> impl Fn(Rank, &zipper_core::ZipperWriter) + Send + Sync {
    let steps = cfg.steps;
    let block = cfg.tuning.block_size.as_u64() as usize;
    let per_step = cfg.blocks_per_rank_step() as u32;
    move |rank, writer| {
        for s in 0..steps {
            for i in 0..per_step {
                let id = BlockId::new(rank, StepId(s), i);
                writer.write(Block::from_payload(
                    rank,
                    StepId(s),
                    i,
                    per_step,
                    GlobalPos::linear((i as u64) * block as u64),
                    deterministic_payload(id, block),
                ));
            }
        }
    }
}

#[test]
fn every_block_arrives_exactly_once_with_intact_payload() {
    let cfg = base_cfg();
    let (report, ids) = run_workflow(
        &cfg,
        NetworkOptions::default(),
        StorageOptions::Memory,
        verifiable_producer(&cfg),
        |_rank, reader| {
            let mut seen = Vec::new();
            while let Some(b) = reader.read() {
                // Payload must match what the producer generated for this id.
                assert_eq!(
                    b.payload,
                    deterministic_payload(b.id(), b.payload.len()),
                    "corrupted payload for {:?}",
                    b.id()
                );
                seen.push(b.id());
            }
            seen
        },
    );
    report.assert_complete();
    let all: Vec<BlockId> = ids.into_iter().flatten().collect();
    let unique: HashSet<_> = all.iter().copied().collect();
    assert_eq!(all.len() as u64, cfg.total_blocks());
    assert_eq!(unique.len() as u64, cfg.total_blocks(), "duplicates seen");
}

#[test]
fn dual_channel_delivery_is_complete_under_throttled_network() {
    let mut cfg = base_cfg();
    cfg.tuning.producer_slots = 4;
    cfg.tuning.high_water_mark = 2;
    let (report, ids) = run_workflow(
        &cfg,
        NetworkOptions::throttled(1, 1.5e6, Duration::from_micros(100)),
        StorageOptions::Memory,
        verifiable_producer(&cfg),
        |_rank, reader| {
            let mut seen = Vec::new();
            while let Some(b) = reader.read() {
                assert_eq!(b.payload, deterministic_payload(b.id(), b.payload.len()));
                seen.push(b.id());
            }
            seen
        },
    );
    report.assert_complete();
    assert!(
        report.steal_fraction() > 0.0,
        "slow channel must engage the writer thread"
    );
    let all: HashSet<BlockId> = ids.into_iter().flatten().collect();
    assert_eq!(all.len() as u64, cfg.total_blocks());
}

#[test]
fn preserve_mode_persists_every_block_once() {
    let mut cfg = base_cfg();
    cfg.tuning.preserve = PreserveMode::Preserve;
    let (report, _) = run_workflow(
        &cfg,
        NetworkOptions::throttled(2, 8e6, Duration::ZERO),
        StorageOptions::Memory,
        verifiable_producer(&cfg),
        |_r, reader| while reader.read().is_some() {},
    );
    report.assert_complete();
    assert_eq!(report.pfs_blocks as u64, cfg.total_blocks());
    // Each block is stored exactly once: writer-stolen blocks by the
    // producer side, the rest by the consumer's output thread.
    let t = report.producer_total();
    let c = report.consumer_total();
    assert_eq!(t.blocks_stolen + c.blocks_stored, cfg.total_blocks());
}

#[test]
fn real_disk_backend_round_trips_stolen_blocks() {
    let dir = std::env::temp_dir().join(format!("zipper-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = std::sync::Arc::new(zipper_pfs::DiskFs::new(&dir).unwrap());

    // Drive the producer/consumer modules directly on a real disk store.
    let mesh = zipper_core::ChannelMesh::new(1, 1).with_throttle(1e6, Duration::ZERO);
    let tuning = {
        let mut t = base_cfg().tuning;
        t.producer_slots = 4;
        t.high_water_mark = 1;
        t
    };
    let mut consumer = zipper_core::Consumer::spawn(
        Rank(0),
        tuning,
        1,
        mesh.take_receiver(Rank(0)).unwrap(),
        storage.clone(),
    );
    let reader = consumer.reader();
    let mut producer =
        zipper_core::Producer::spawn(Rank(0), tuning, mesh.sender(), storage.clone());
    let writer = producer.writer(1 << 14);

    let feeder = std::thread::spawn(move || {
        for s in 0..4u64 {
            writer.write_slab(
                StepId(s),
                GlobalPos::default(),
                Bytes::from(vec![7u8; 1 << 16]),
            );
        }
        writer.finish();
    });
    let mut n = 0;
    while let Some(b) = reader.read() {
        assert_eq!(b.payload.len(), 1 << 14);
        n += 1;
    }
    feeder.join().unwrap();
    let pm = producer.join();
    let cm = consumer.join();
    assert_eq!(n, 16);
    assert!(pm.errors.is_empty(), "{:?}", pm.errors);
    assert!(cm.errors.is_empty(), "{:?}", cm.errors);
    assert!(pm.blocks_stolen > 0, "expected disk-path traffic");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn round_robin_routing_balances_consumers() {
    let mut cfg = base_cfg();
    cfg.producers = 3;
    cfg.consumers = 2;
    cfg.tuning.routing = zipper_types::RoutingPolicy::RoundRobin;
    // Message path only: the writer thread rotates independently, which
    // would make the exact 50/50 split racy.
    cfg.tuning.concurrent_transfer = false;
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::default(),
        StorageOptions::Memory,
        verifiable_producer(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    report.assert_complete();
    let total: u64 = counts.iter().sum();
    assert_eq!(total, cfg.total_blocks());
    // Round robin per producer: each consumer gets an equal share.
    assert_eq!(counts[0], counts[1]);
}

#[test]
fn stall_time_is_reported_when_consumer_is_slow() {
    let mut cfg = base_cfg();
    cfg.producers = 1;
    cfg.consumers = 1;
    cfg.tuning.producer_slots = 2;
    cfg.tuning.high_water_mark = 1;
    cfg.tuning.concurrent_transfer = false;
    let (report, _) = run_workflow(
        &cfg,
        NetworkOptions::unthrottled(1),
        StorageOptions::Memory,
        verifiable_producer(&cfg),
        |_r, reader| {
            while reader.read().is_some() {
                // Deliberately slow consumer to exercise real backpressure.
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(Duration::from_millis(2));
            }
        },
    );
    report.assert_complete();
    assert!(
        report.mean_stall() > Duration::ZERO,
        "a slow consumer with tiny buffers must stall the producer"
    );
}

#[test]
fn many_rank_stress_run_stays_consistent() {
    let mut cfg = base_cfg();
    cfg.producers = 8;
    cfg.consumers = 4;
    cfg.steps = 10;
    cfg.bytes_per_rank_step = ByteSize::kib(64);
    cfg.tuning.block_size = ByteSize::kib(4);
    let (report, counts) = run_workflow(
        &cfg,
        NetworkOptions::throttled(4, 20e6, Duration::ZERO),
        StorageOptions::ThrottledMemory(50e6, Duration::from_micros(50)),
        verifiable_producer(&cfg),
        |_r, reader| {
            let mut n = 0u64;
            while reader.read().is_some() {
                n += 1;
            }
            n
        },
    );
    report.assert_complete();
    assert_eq!(counts.iter().sum::<u64>(), cfg.total_blocks());
}

/// Regression: the sender must not flush pending disk-IDs and announce
/// EOS while the writer thread is still storing its final stolen block —
/// that block's ID would never be announced and the block would be lost.
/// Slow per-op storage latency keeps the writer mid-`put` when the stream
/// closes; repeated runs widen the race window.
#[test]
fn shutdown_race_loses_no_stolen_blocks() {
    for trial in 0..20 {
        let mut cfg = base_cfg();
        cfg.producers = 2;
        cfg.consumers = 1;
        cfg.steps = 4;
        cfg.tuning.producer_slots = 4;
        cfg.tuning.high_water_mark = 1;
        let (report, counts) = run_workflow(
            &cfg,
            // Slow channel so stealing engages right up to the end...
            NetworkOptions::throttled(1, 3e6, Duration::ZERO),
            // ...and slow storage ops so the writer is busy at close time.
            StorageOptions::ThrottledMemory(50e6, Duration::from_millis(3)),
            verifiable_producer(&cfg),
            |_r, reader| {
                let mut n = 0u64;
                while reader.read().is_some() {
                    n += 1;
                }
                n
            },
        );
        report.assert_complete();
        assert_eq!(
            counts.iter().sum::<u64>(),
            cfg.total_blocks(),
            "trial {trial}: lost blocks at shutdown"
        );
    }
}
