//! Static preflight conformance: the verifier's verdicts are held
//! against both substrates.
//!
//! * Every plan the decision/causal conformance suites run (Configs
//!   A–E, the seeded chaos/gate plans, the DropEos-concurrent plan, the
//!   gate+chaos composition) passes `Preflight::check` with zero
//!   errors — the verifier never rejects a plan the substrates prove
//!   runnable.
//! * Each crafted negative plan is rejected with its documented `ZV`
//!   code (the codes are listed in DESIGN.md "Static preflight").
//! * The statically derived causal skeleton matches the
//!   decision-determined part of the edge multiset the DES causal
//!   engine records at runtime (Configs B, C, E).
//! * Property: a randomly generated plan the verifier *accepts* runs to
//!   completion on the DES with no EOS watchdog and no timeout —
//!   "accepted ⇒ completes" — and the seeded CI generators never
//!   produce a rejected plan for any seed.

use std::time::Duration;
use zipper_policy::ZvCode;
use zipper_trace::CausalGraph;
use zipper_transports::spec::{sim_config, ClusterLayout, WorkflowSpec};
use zipper_transports::zipper::{build_recorded, reclassify_causal};
use zipper_types::{
    BackpressureScript, ChaosEntity, ChaosFault, ChaosPlan, GateRule, Rank, RecoveryPolicy,
    RoutingPolicy, SimTime,
};

const BLOCK: u64 = 16 << 10;

/// The conformance suite's default scenario shape
/// (`policy_conformance::Scenario::default`) as a DES spec.
fn base_spec() -> WorkflowSpec {
    let mut s = WorkflowSpec::synthetic(zipper_apps::Complexity::Linear, 2, 2, 4 * BLOCK, BLOCK);
    s.steps = 2;
    s.ranks_per_node = 2;
    s.producer_slots = 16;
    s.high_water_mark = 8;
    s
}

/// The Config C backpressure script: wire 2 held until 3 cumulative
/// steals, wire 4 until a 4th, on every producer.
fn config_c_script(producers: usize) -> BackpressureScript {
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        script = script
            .with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3))
            .with(Rank(p as u32), 4, GateRule::OpenAfterSteals(4));
    }
    script
}

fn config_b_spec() -> WorkflowSpec {
    let mut s = base_spec();
    s.concurrent_transfer = true;
    s.preserve = true;
    s.routing = RoutingPolicy::RoundRobin;
    s
}

fn config_c_spec() -> WorkflowSpec {
    let mut s = base_spec();
    s.concurrent_transfer = true;
    s.routing = RoutingPolicy::RoundRobin;
    s.backpressure = Some(config_c_script(2));
    s
}

fn config_d_spec() -> WorkflowSpec {
    let mut s = base_spec();
    s.preserve = true;
    s.routing = RoutingPolicy::RoundRobin;
    s.virtual_eos_timeout = Some(SimTime::from_nanos(1_000_000_000));
    s.chaos = Some(
        ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
            .with(ChaosEntity::Sender(Rank(0)), 4, ChaosFault::CorruptWire)
            .with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::FailSend)
            .with(
                ChaosEntity::Sender(Rank(1)),
                3,
                ChaosFault::DelayWire(Duration::from_millis(2)),
            )
            .with(ChaosEntity::Output(Rank(0)), 2, ChaosFault::PfsWriteFail),
    );
    s
}

fn config_e_spec() -> WorkflowSpec {
    let mut s = base_spec();
    s.high_water_mark = 0;
    s.concurrent_transfer = true;
    s.preserve = true;
    s.routing = RoutingPolicy::RoundRobin;
    s.recovery = RecoveryPolicy {
        writer_cooldown: Duration::from_millis(1),
        max_writer_revivals: 1,
        max_consumer_restarts: 1,
    };
    s.chaos = Some(
        ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 1, ChaosFault::DetachSender)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::DetachSender)
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_millis(1)),
            )
            .with(ChaosEntity::Writer(Rank(0)), 2, ChaosFault::PfsWriteFail)
            .with(ChaosEntity::Analysis(Rank(1)), 3, ChaosFault::CrashApp),
    );
    s
}

/// Every conformance-suite plan must be accepted with zero errors.
#[test]
fn conformance_plans_pass_preflight_clean() {
    let plans: Vec<(&str, WorkflowSpec)> = vec![
        ("config A", base_spec()),
        ("config B", config_b_spec()),
        ("config C", config_c_spec()),
        ("config D", config_d_spec()),
        ("config E", config_e_spec()),
        ("dropped EOS concurrent", {
            let mut s = base_spec();
            s.concurrent_transfer = true;
            s.virtual_eos_timeout = Some(SimTime::from_nanos(1_000_000_000));
            s.chaos =
                Some(ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 9, ChaosFault::DropEos));
            s
        }),
        ("gate + chaos composed", {
            let mut s = base_spec();
            s.concurrent_transfer = true;
            s.routing = RoutingPolicy::RoundRobin;
            let mut script = BackpressureScript::new();
            for p in 0..2 {
                script = script.with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3));
            }
            s.backpressure = Some(script);
            s.chaos = Some(
                ChaosPlan::new()
                    .with(ChaosEntity::Sender(Rank(0)), 2, ChaosFault::DropWire)
                    .with(
                        ChaosEntity::Sender(Rank(1)),
                        2,
                        ChaosFault::DelayWire(Duration::from_micros(100)),
                    ),
            );
            s
        }),
    ];
    for (name, spec) in &plans {
        spec.validate()
            .unwrap_or_else(|e| panic!("{name}: spec invalid: {e}"));
        let report = spec.preflight();
        assert!(
            !report.is_rejected(),
            "{name} must pass preflight clean:\n{}",
            report.render()
        );
    }
}

/// Each crafted negative plan is rejected with its documented distinct
/// diagnostic code.
#[test]
fn negative_plans_reject_with_documented_codes() {
    // ZV011: statically unsatisfiable OpenAfterSteals window.
    let mut s = config_c_spec();
    s.backpressure = Some(BackpressureScript::new().with(Rank(0), 6, GateRule::OpenAfterSteals(5)));
    let report = s.preflight();
    assert!(report.is_rejected());
    assert!(
        report.has(ZvCode::UnsatisfiableWindow),
        "{}",
        report.render()
    );

    // ZV020: dead chaos ordinal (sender performs 10 ops in config A's
    // shape: 8 data wires + 2 EOS marks).
    let mut s = base_spec();
    s.chaos = Some(ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 11, ChaosFault::DropWire));
    let report = s.preflight();
    assert!(report.is_rejected());
    assert!(report.has(ZvCode::DeadOrdinal), "{}", report.render());

    // ZV030: CrashApp with a zero restart budget.
    let mut s = base_spec();
    s.chaos = Some(ChaosPlan::new().with(ChaosEntity::Analysis(Rank(0)), 2, ChaosFault::CrashApp));
    let report = s.preflight();
    assert!(report.is_rejected());
    assert!(report.has(ZvCode::UnhealedCrash), "{}", report.render());

    // ZV004: per-step block count past the 24-bit tag field.
    let mut s = base_spec();
    s.block_size = 1;
    s.bytes_per_rank_step = zipper_policy::preflight::TAG_BLOCK_LIMIT + 1;
    let report = s.preflight();
    assert!(report.is_rejected());
    assert!(report.has(ZvCode::TagBlockOverflow), "{}", report.render());

    // The four codes are pairwise distinct — each negative plan gets its
    // own diagnostic, not a shared catch-all.
    let codes = [
        ZvCode::UnsatisfiableWindow,
        ZvCode::DeadOrdinal,
        ZvCode::UnhealedCrash,
        ZvCode::TagBlockOverflow,
    ];
    for (i, a) in codes.iter().enumerate() {
        for b in &codes[i + 1..] {
            assert_ne!(a.code(), b.code());
        }
    }
}

/// Run a spec on the DES with causal recording and return the runtime
/// edge profile.
fn des_edge_profile(spec: &WorkflowSpec) -> std::collections::BTreeMap<String, u64> {
    let layout = ClusterLayout::new(spec, 0);
    let mut sim = hpcsim::Simulator::new(sim_config(spec, &layout));
    sim.set_trace_detail(true);
    sim.enable_causal();
    let _policies = build_recorded(&mut sim, spec, &layout);
    let r = sim.run();
    assert!(r.is_clean(), "DES run not clean: {r:?}");
    let mut causal = sim.take_causal().expect("causal enabled");
    reclassify_causal(&mut causal);
    let trace = sim.into_trace();
    let g = CausalGraph::build(&trace, &causal);
    g.edge_profile()
        .into_iter()
        .map(|(sig, n)| (sig, n as u64))
        .collect()
}

/// The statically derived causal skeleton equals the
/// decision-determined part of the runtime edge multiset, per config.
#[test]
fn skeleton_matches_des_edge_profile() {
    for (name, spec) in [
        ("config B", config_b_spec()),
        ("config C", config_c_spec()),
        ("config E", config_e_spec()),
    ] {
        let report = spec.preflight();
        assert!(!report.is_rejected(), "{name}: {}", report.render());
        assert!(report.pinned, "{name}: conformance configs are pinned");
        assert!(report.skeleton.is_acyclic(), "{name}");
        let profile = des_edge_profile(&spec);
        if let Err(why) = report.skeleton.matches_profile(&profile) {
            panic!("{name}: {why}");
        }
    }
}

/// The opt-in workflow gate refuses a provably-deadlocking plan without
/// spawning a thread, and passes a clean plan through to a real run.
#[test]
fn run_workflow_checked_gates_on_preflight() {
    use zipper_types::{ByteSize, GlobalPos, PreserveMode, StepId, WorkflowConfig};
    use zipper_workflow::{run_workflow_checked, NetworkOptions, StorageOptions, TraceOptions};

    let mut cfg = WorkflowConfig {
        producers: 2,
        consumers: 2,
        steps: 2,
        bytes_per_rank_step: ByteSize::bytes(4 * BLOCK),
        ..Default::default()
    };
    cfg.tuning.block_size = ByteSize::bytes(BLOCK);
    cfg.tuning.producer_slots = 16;
    cfg.tuning.high_water_mark = 8;
    cfg.tuning.concurrent_transfer = true;
    cfg.tuning.preserve = PreserveMode::Preserve;
    cfg.tuning.routing = RoutingPolicy::RoundRobin;

    let produce = |rank: Rank, writer: &zipper_core::ZipperWriter| {
        for s in 0..2u64 {
            let payload = vec![rank.0 as u8; 4 * BLOCK as usize];
            writer.write_slab(StepId(s), GlobalPos::default(), payload.into());
        }
    };
    let consume = |_: Rank, reader: &zipper_core::ZipperReader| {
        while reader.read().is_some() {}
    };

    // A dead-ordinal plan is refused before any thread spawns.
    let bad = ChaosPlan::new().with(ChaosEntity::Sender(Rank(0)), 99, ChaosFault::DropWire);
    let refused = run_workflow_checked(
        &cfg,
        NetworkOptions::default(),
        StorageOptions::Memory,
        TraceOptions::off(),
        &bad,
        produce,
        consume,
    );
    let report = refused.err().expect("dead-ordinal plan must be refused");
    assert!(report.has(ZvCode::DeadOrdinal), "{}", report.render());

    // A clean (empty) plan runs end to end and returns the preflight
    // report alongside the workflow results.
    let ok = run_workflow_checked(
        &cfg,
        NetworkOptions::default(),
        StorageOptions::Memory,
        TraceOptions::off(),
        &ChaosPlan::new(),
        produce,
        consume,
    );
    let (workflow, results, _policies, preflight) = ok.expect("clean plan must run");
    workflow.assert_complete();
    assert_eq!(results.len(), 2);
    assert!(!preflight.is_rejected());
}

/// splitmix64 — the seeded conformance generators' mixer.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The existing seeded CI generators never produce a verifier-rejected
/// plan: any seed the chaos/gate matrices pick yields a plan preflight
/// accepts (so a seeded matrix failure is always conformance-broken,
/// never plan-invalid).
#[test]
fn seeded_generators_never_produce_rejected_plans() {
    for seed in 0..64u64 {
        // The seeded chaos generator: 4 producers, message-only,
        // Preserve, round-robin, ordinals confined to the 8 data wires.
        let mut state = seed;
        let kinds = [
            ChaosFault::DropWire,
            ChaosFault::CorruptWire,
            ChaosFault::DelayWire(Duration::from_micros(200)),
            ChaosFault::FailSend,
        ];
        let mut plan = ChaosPlan::new();
        for p in 0..4 {
            let ordinal = 1 + splitmix(&mut state) % 8;
            let kind = kinds[(splitmix(&mut state) % kinds.len() as u64) as usize];
            plan = plan.with(ChaosEntity::Sender(Rank(p as u32)), ordinal, kind);
        }
        let mut s = base_spec();
        s.sim_ranks = 4;
        s.bytes_per_rank_step = 4 * BLOCK;
        s.preserve = true;
        s.routing = RoutingPolicy::RoundRobin;
        s.chaos = Some(plan);
        let report = s.preflight();
        assert!(
            !report.is_rejected(),
            "seeded chaos (seed {seed}) rejected:\n{}",
            report.render()
        );

        // The seeded gate generator: one credit window per producer,
        // wire 1..=3, target inside the remaining block budget.
        let mut state = seed.wrapping_mul(0x5851_f42d_4c95_7f2d);
        let mut script = BackpressureScript::new();
        for p in 0..2 {
            let wire = 1 + splitmix(&mut state) % 3;
            let target = 1 + splitmix(&mut state) % (8 - wire - 1);
            script = script.with(Rank(p as u32), wire, GateRule::OpenAfterSteals(target));
        }
        let mut s = base_spec();
        s.concurrent_transfer = true;
        s.routing = RoutingPolicy::RoundRobin;
        s.backpressure = Some(script);
        let report = s.preflight();
        assert!(
            !report.is_rejected(),
            "seeded gate (seed {seed}) rejected:\n{}",
            report.render()
        );
    }
}

/// Build a random plan from raw draws. Deliberately allowed to generate
/// bad plans (dead ordinals, unsatisfiable windows, unhealed crashes):
/// the property filters on the verifier's verdict.
#[allow(clippy::too_many_arguments)]
fn random_spec(
    producers: usize,
    consumers: usize,
    steps: u64,
    blocks_per_step: u64,
    pinned_hwm: bool,
    concurrent: bool,
    preserve: bool,
    chaos_draws: &[(u8, u64, u8)],
    gate_draw: Option<(u64, u64)>,
    budgets: (u32, u32),
) -> WorkflowSpec {
    let mut s = WorkflowSpec::synthetic(
        zipper_apps::Complexity::Linear,
        producers,
        consumers,
        blocks_per_step * BLOCK,
        BLOCK,
    );
    s.steps = steps;
    s.ranks_per_node = 2;
    s.producer_slots = 64;
    let n = steps * blocks_per_step;
    s.high_water_mark = if pinned_hwm { n as usize } else { 2 };
    s.concurrent_transfer = concurrent;
    s.preserve = preserve;
    s.routing = RoutingPolicy::RoundRobin;
    s.recovery = RecoveryPolicy {
        writer_cooldown: Duration::from_millis(1),
        max_writer_revivals: budgets.0,
        max_consumer_restarts: budgets.1,
    };
    let mut plan = ChaosPlan::new();
    for &(entity_kind, ordinal, fault_kind) in chaos_draws {
        let fault = match fault_kind % 6 {
            0 => ChaosFault::DropWire,
            1 => ChaosFault::CorruptWire,
            2 => ChaosFault::DelayWire(Duration::from_micros(50)),
            3 => ChaosFault::FailSend,
            4 => ChaosFault::DropEos,
            _ => ChaosFault::PfsWriteFail,
        };
        let ev = match entity_kind % 4 {
            0 => (ChaosEntity::Sender(Rank(0)), fault),
            1 => (
                ChaosEntity::Writer(Rank((ordinal % producers as u64) as u32)),
                ChaosFault::PfsWriteFail,
            ),
            2 => (
                ChaosEntity::Analysis(Rank((ordinal % consumers as u64) as u32)),
                ChaosFault::CrashApp,
            ),
            _ => (ChaosEntity::Sender(Rank((producers - 1) as u32)), fault),
        };
        plan = plan.with(ev.0, 1 + ordinal, ev.1);
    }
    s.chaos = (!plan.is_empty()).then_some(plan);
    if let Some((wire, target)) = gate_draw {
        s.backpressure = Some(BackpressureScript::new().with(
            Rank(0),
            1 + wire,
            GateRule::OpenAfterSteals(1 + target),
        ));
    }
    s
}

mod accepted_implies_completion {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The soundness theorem the verifier exists for: a plan
        /// preflight accepts — with NO EOS watchdog armed — runs to
        /// completion on the DES (no deadlock, no fault, no abandoned
        /// rank). Rejected plans are skipped: the property is
        /// "accepted ⇒ completes", not "rejected ⇒ hangs" (rejection is
        /// allowed to be conservative).
        #[test]
        fn verifier_accepted_plans_complete_on_the_des(
            producers in 1usize..4,
            consumers in 1usize..3,
            steps in 1u64..3,
            blocks_per_step in 2u64..5,
            pinned_hwm in proptest::bool::ANY,
            concurrent in proptest::bool::ANY,
            preserve in proptest::bool::ANY,
            chaos in proptest::collection::vec((0u8..4, 0u64..14, 0u8..6), 0..3),
            gate_wire in 0u64..8,
            gate_target in 0u64..8,
            with_gate in proptest::bool::ANY,
            revivals in 0u32..2,
            restarts in 0u32..2,
        ) {
            let spec = random_spec(
                producers,
                consumers,
                steps,
                blocks_per_step,
                pinned_hwm,
                concurrent,
                preserve,
                &chaos,
                with_gate.then_some((gate_wire, gate_target)),
                (revivals, restarts),
            );
            let report = spec.preflight();
            if report.is_rejected() {
                // The plan is refused; nothing to run.
                if std::env::var("ZIPPER_PREFLIGHT_STATS").is_ok() {
                    eprintln!("rejected");
                }
                return Ok(());
            }
            if std::env::var("ZIPPER_PREFLIGHT_STATS").is_ok() {
                eprintln!("accepted (pinned={})", report.pinned);
            }
            // Accepted ⇒ the spec is also structurally valid...
            prop_assert!(spec.validate().is_ok(), "accepted but validate fails: {:?}", spec.validate());
            // ...and the DES run completes cleanly with no watchdog.
            let layout = ClusterLayout::new(&spec, 0);
            let mut sim = hpcsim::Simulator::new(sim_config(&spec, &layout));
            let _policies = build_recorded(&mut sim, &spec, &layout);
            let r = sim.run();
            prop_assert!(
                r.is_clean(),
                "verifier-accepted plan did not complete: {:?}\n{}",
                r,
                report.render()
            );
        }
    }
}
