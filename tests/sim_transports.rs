//! Integration tests of the discrete-event stack: every transport model on
//! every workload, plus the structural properties each one must exhibit.

use std::time::Duration;
use zipper_apps::Complexity;
use zipper_trace::stats::kind_time_filtered;
use zipper_trace::SpanKind;
use zipper_transports::{
    run, run_analysis_only, run_sim_only, run_with_detail, TransportKind, WorkflowSpec,
};
use zipper_types::{BackpressureScript, GateRule, Rank, RoutingPolicy};

fn tiny_cfd() -> WorkflowSpec {
    let mut s = WorkflowSpec::cfd(6, 3, 4);
    s.ranks_per_node = 3;
    s.staging_servers = 2;
    s.decaf_links = 2;
    s
}

fn tiny_lammps() -> WorkflowSpec {
    let mut s = WorkflowSpec::lammps(6, 3, 3);
    s.ranks_per_node = 3;
    s.staging_servers = 2;
    s.decaf_links = 2;
    s
}

#[test]
fn all_transports_complete_both_applications() {
    for spec in [tiny_cfd(), tiny_lammps()] {
        let sim_only = run_sim_only(&spec);
        assert!(sim_only.is_clean());
        for kind in TransportKind::ALL {
            let r = run(kind, &spec);
            assert!(r.is_clean(), "{} failed: {:?}", r.name, r.fault);
            assert!(
                r.end_to_end >= sim_only.end_to_end,
                "{} ({}) beat simulation-only ({})",
                r.name,
                r.end_to_end,
                sim_only.end_to_end
            );
            // Every step got analyzed on every consumer.
            let analyzed = r
                .trace
                .spans()
                .iter()
                .filter(|s| s.kind == SpanKind::Analysis)
                .count();
            assert!(
                analyzed >= (spec.ana_ranks as u64 * spec.steps) as usize,
                "{}: only {analyzed} analysis spans",
                r.name
            );
        }
    }
}

#[test]
fn zipper_wins_and_tracks_sim_only() {
    let spec = tiny_cfd();
    let zipper = run(TransportKind::Zipper, &spec);
    let sim_only = run_sim_only(&spec);
    for kind in TransportKind::ALL {
        if kind == TransportKind::Zipper {
            continue;
        }
        let r = run(kind, &spec);
        assert!(
            r.end_to_end >= zipper.end_to_end,
            "{} ({}) beat Zipper ({})",
            r.name,
            r.end_to_end,
            zipper.end_to_end
        );
    }
    // §6.3: "Zipper's end-to-end time is almost equal to the
    // simulation-only time".
    let ratio = zipper.end_to_end.as_secs_f64() / sim_only.end_to_end.as_secs_f64();
    assert!(ratio < 1.3, "Zipper/sim-only = {ratio}");
}

#[test]
fn adios_wrappers_cost_more_than_native() {
    let spec = tiny_cfd();
    let ds_native = run(TransportKind::DataSpacesNative, &spec);
    let ds_adios = run(TransportKind::DataSpacesAdios, &spec);
    assert!(ds_adios.end_to_end > ds_native.end_to_end);
    let dimes_native = run(TransportKind::DimesNative, &spec);
    let dimes_adios = run(TransportKind::DimesAdios, &spec);
    assert!(dimes_adios.end_to_end > dimes_native.end_to_end);
}

#[test]
fn decaf_shows_waitall_and_dimes_shows_locks() {
    let spec = tiny_cfd();
    let decaf = run(TransportKind::Decaf, &spec);
    assert!(decaf.waitall.as_nanos() > 0, "Decaf must MPI_Waitall");
    let dimes = run(TransportKind::DimesNative, &spec);
    let barrier = kind_time_filtered(&dimes.trace, SpanKind::Barrier, |l| l.starts_with("sim/"));
    assert!(barrier.as_nanos() > 0, "DIMES type-2 lock is collective");
    let zipper = run(TransportKind::Zipper, &spec);
    assert_eq!(zipper.waitall.as_nanos(), 0, "Zipper has no waitall");
    assert_eq!(zipper.lock.as_nanos(), 0, "Zipper has no staging locks");
}

#[test]
fn crash_thresholds_fire_only_at_scale() {
    let mut spec = tiny_cfd();
    spec.flexpath_crash_cores = Some(9);
    spec.decaf_crash_cores = Some(9);
    let flex = run(TransportKind::Flexpath, &spec);
    assert!(flex.fault.as_deref().unwrap_or("").contains("segmentation"));
    let decaf = run(TransportKind::Decaf, &spec);
    assert!(decaf.fault.as_deref().unwrap_or("").contains("overflow"));
    // Below threshold: clean.
    spec.flexpath_crash_cores = Some(1000);
    spec.decaf_crash_cores = Some(1000);
    assert!(run(TransportKind::Flexpath, &spec).is_clean());
    assert!(run(TransportKind::Decaf, &spec).is_clean());
}

#[test]
fn runs_are_deterministic_per_seed_and_vary_across_seeds() {
    let spec = tiny_cfd();
    let a = run(TransportKind::MpiIo, &spec);
    let b = run(TransportKind::MpiIo, &spec);
    assert_eq!(a.end_to_end, b.end_to_end);
    assert_eq!(a.events, b.events);

    let mut spec2 = tiny_cfd();
    spec2.seed = spec.seed + 1;
    let c = run(TransportKind::MpiIo, &spec2);
    assert_ne!(
        a.end_to_end, c.end_to_end,
        "PFS/MDS load variance must differ across seeds"
    );
}

#[test]
fn trace_detail_off_preserves_aggregates() {
    let spec = tiny_cfd();
    let full = run_with_detail(TransportKind::Zipper, &spec, true);
    let lite = run_with_detail(TransportKind::Zipper, &spec, false);
    assert_eq!(full.end_to_end, lite.end_to_end);
    assert_eq!(full.stall, lite.stall);
    assert_eq!(full.sendrecv, lite.sendrecv);
    assert_eq!(full.sim_finish, lite.sim_finish);
    assert!(!full.trace.spans().is_empty());
    assert_eq!(lite.trace.spans().len(), 0, "lite mode stores no spans");
}

#[test]
fn dual_channel_reduces_producer_stall_when_network_is_the_bottleneck() {
    // O(n) producers overwhelm the NICs (the Fig. 14a regime).
    let mk = |concurrent| {
        let mut s = WorkflowSpec::synthetic(Complexity::Linear, 56, 28, 256 << 20, 1 << 20);
        s.concurrent_transfer = concurrent;
        s
    };
    let msg_only = run_with_detail(TransportKind::Zipper, &mk(false), false);
    let dual = run_with_detail(TransportKind::Zipper, &mk(true), false);
    assert!(msg_only.is_clean() && dual.is_clean());
    assert!(dual.pfs_requests > 0, "stealing must engage");
    assert!(
        dual.sim_finish < msg_only.sim_finish,
        "dual channel must shorten the simulation wall clock: {} vs {}",
        dual.sim_finish,
        msg_only.sim_finish
    );
    assert!(
        dual.xmit_wait_sim < msg_only.xmit_wait_sim,
        "dual channel must ease congestion (Fig. 15)"
    );
}

#[test]
fn compute_bound_producer_never_steals() {
    // O(n^1.5): the buffer stays near-empty, the optimization falls back
    // to message passing (Fig. 14c).
    let mut s = WorkflowSpec::synthetic(Complexity::N32, 12, 6, 64 << 20, 1 << 20);
    s.concurrent_transfer = true;
    let r = run_with_detail(TransportKind::Zipper, &s, false);
    assert!(r.is_clean());
    assert_eq!(r.pfs_requests, 0, "no stealing opportunities");
}

#[test]
fn analysis_only_scales_with_sources() {
    let spec = tiny_cfd();
    let one = run_analysis_only(&spec);
    let mut bigger = tiny_cfd();
    bigger.ana_ranks = 1; // all six producers on one consumer
    let heavy = run_analysis_only(&bigger);
    assert!(heavy > one);
}

/// One point of the Fig. 14 steal/transfer grid: the O(n) synthetic under
/// the concurrent method, with the producer→consumer routing policy and an
/// optional backpressure script as the grid axes. Returns the message/file
/// split (fraction of blocks stolen to the file channel, in percent), the
/// simulation-node XmitWait counter, and the simulation wall clock.
fn fig14_point(
    cores: usize,
    routing: RoutingPolicy,
    script: Option<BackpressureScript>,
) -> (f64, u64, f64) {
    let sim = cores * 2 / 3;
    let ana = cores - sim;
    let mut s = WorkflowSpec::synthetic(Complexity::Linear, sim, ana, 128 << 20, 1 << 20);
    s.concurrent_transfer = true;
    s.routing = routing;
    s.seed = 11;
    s.backpressure = script;
    let r = run_with_detail(TransportKind::Zipper, &s, false);
    assert!(r.is_clean(), "{:?} {:?}", r.fault, r.deadlocked);
    let total = s.blocks_per_rank_step() * sim as u64 * s.steps;
    // In No-Preserve mode each stolen block is exactly one PFS write plus
    // one PFS read.
    let stolen = r.pfs_requests / 2;
    (
        stolen as f64 / total as f64 * 100.0,
        r.xmit_wait_sim,
        r.sim_finish.as_secs_f64(),
    )
}

/// Fig. 14 grid with the round-robin router (the table lives in
/// EXPERIMENTS.md): below the leaf-switch boundary routing barely moves
/// the message/file split, but at scale round-robin trades the
/// source-affine router's locality for spread — every producer talks to
/// every consumer, more traffic crosses the core uplinks, congestion and
/// XmitWait rise, and Algorithm 1 steals a visibly larger share of the
/// stream to the file channel.
#[test]
fn roundrobin_routing_shifts_the_fig14_split_at_scale() {
    // 42 cores: both routers' destinations sit under the same part of the
    // fabric — the split must not move materially.
    let (sa, _, _) = fig14_point(42, RoutingPolicy::SourceAffine, None);
    let (rr, _, _) = fig14_point(42, RoutingPolicy::RoundRobin, None);
    assert!(
        (sa - rr).abs() < 3.0,
        "below the switch boundary routing must not move the split: {sa:.1}% vs {rr:.1}%"
    );
    // At scale the spread crosses core uplinks: round-robin must steal a
    // materially larger share and congest the sim NICs harder.
    for (cores, min_gap) in [(168, 3.0), (336, 8.0)] {
        let (sa, sa_xmit, _) = fig14_point(cores, RoutingPolicy::SourceAffine, None);
        let (rr, rr_xmit, _) = fig14_point(cores, RoutingPolicy::RoundRobin, None);
        assert!(
            rr > sa + min_gap,
            "{cores} cores: round-robin must shift the split to the file \
             channel: {sa:.1}% vs {rr:.1}%"
        );
        assert!(
            rr_xmit > sa_xmit,
            "{cores} cores: losing locality must raise XmitWait"
        );
    }
}

/// The scripted-backpressure half of the Fig. 14 sweep: at a scale where
/// natural congestion is mild, `GateRule::Hold` windows emulating a
/// congested NIC must reproduce the file split for *both* routers — the
/// queue rises past the high-water mark during each hold, Algorithm 1
/// steals the overflow, and the wall clock barely moves because the file
/// channel absorbs the scripted stall (the paper's dual-channel claim).
#[test]
fn scripted_backpressure_induces_the_fig14_split_for_both_routers() {
    let script = |sim_ranks: usize| {
        let mut bp = BackpressureScript::new();
        for r in 0..sim_ranks as u32 {
            for wire in [8u64, 32, 56, 80] {
                bp = bp.with(Rank(r), wire, GateRule::Hold(Duration::from_millis(25)));
            }
        }
        bp
    };
    for routing in [RoutingPolicy::SourceAffine, RoutingPolicy::RoundRobin] {
        let (natural, _, wall_n) = fig14_point(42, routing, None);
        let (scripted, _, wall_s) = fig14_point(42, routing, Some(script(28)));
        assert!(
            scripted > natural + 4.0,
            "{routing:?}: scripted holds must shift the split to the file \
             channel: {natural:.1}% vs {scripted:.1}%"
        );
        assert!(
            wall_s < wall_n * 1.15,
            "{routing:?}: stealing must absorb the scripted stall \
             ({wall_n:.2}s vs {wall_s:.2}s)"
        );
    }
}

#[test]
fn mpiio_touches_pfs_staging_transports_do_not() {
    let spec = tiny_cfd();
    let mpiio = run(TransportKind::MpiIo, &spec);
    assert!(mpiio.pfs_requests > 0);
    for kind in [
        TransportKind::DataSpacesNative,
        TransportKind::DimesNative,
        TransportKind::Flexpath,
        TransportKind::Decaf,
    ] {
        let r = run(kind, &spec);
        assert_eq!(r.pfs_requests, 0, "{} must not touch the PFS", r.name);
    }
}
