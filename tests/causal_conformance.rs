//! Causal conformance: the threaded runtime and the DES record the same
//! cross-entity edge taxonomy, so a run with identical workload
//! parameters must yield *structurally identical* causal graphs on both
//! substrates — the same multiset of `kind:src-role=>dst-role` cross
//! edges ([`CausalGraph::edge_profile`]), because the edges are
//! decision-determined and the decisions conform (`policy_conformance`).
//! Timing differs arbitrarily (wall clock vs. virtual clock); the causal
//! structure may not.
//!
//! The *critical path* through those identical graphs is additionally
//! identical whenever the structure forces a single no-slack chain
//! (Config B: every block rides the wire). Where a config admits two
//! competing chains — the net wire vs. the steal/PFS route into the same
//! consumer (Configs C, E) — each substrate's clock legitimately ranks
//! them differently (an in-process wire transfer is slower than a MemFs
//! put on the wall clock; the modeled PFS dominates the modeled NIC in
//! virtual time), so the tests pin the forced parts instead: both paths
//! drain through the stolen block's PFS fetch into the final analysis.
//!
//! The configs mirror the decision-conformance suite
//! (`policy_conformance.rs`):
//!
//! * Config B — round-robin + concurrent transfer + Preserve, no steals.
//! * Config C — scripted partial stealing through a shared
//!   `BackpressureScript` (gate holds and steal edges on the path's
//!   producers).
//! * Config E — recovery under a scripted `ChaosPlan` (writer fault +
//!   revival, consumer crash + restart).
//!
//! Each config also checks the attribution invariant on both substrates:
//! the per-bucket breakdown of the extracted path sums to the graph
//! makespan within 1 %.

use std::time::Duration;
use zipper_trace::{CausalGraph, CausalLog, CriticalPath, TraceLog};
use zipper_transports::spec::{sim_config, ClusterLayout, WorkflowSpec};
use zipper_transports::zipper::{build_recorded, reclassify_causal};
use zipper_types::{
    BackpressureScript, ByteSize, ChaosEntity, ChaosFault, ChaosPlan, GateRule, GlobalPos,
    PreserveMode, Rank, RecoveryPolicy, RoutingPolicy, StepId, WorkflowConfig,
};
use zipper_workflow::{
    run_workflow_chaos, run_workflow_recorded, NetworkOptions, StorageOptions, TraceOptions,
    WorkflowPolicies, WorkflowReport,
};

const BLOCK: u64 = 16 << 10;

/// One conformance scenario, expressed substrate-independently (the
/// causal subset of `policy_conformance::Scenario`).
#[derive(Clone)]
struct Scenario {
    producers: usize,
    consumers: usize,
    steps: u64,
    blocks_per_step: u64,
    producer_slots: usize,
    high_water_mark: usize,
    concurrent_transfer: bool,
    preserve: bool,
    routing: RoutingPolicy,
    chaos: ChaosPlan,
    recovery: RecoveryPolicy,
    backpressure: Option<BackpressureScript>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            producers: 2,
            consumers: 2,
            steps: 2,
            blocks_per_step: 4,
            producer_slots: 16,
            high_water_mark: 8,
            concurrent_transfer: false,
            preserve: false,
            routing: RoutingPolicy::SourceAffine,
            chaos: ChaosPlan::new(),
            recovery: RecoveryPolicy::default(),
            backpressure: None,
        }
    }
}

impl Scenario {
    fn threaded_config(&self) -> WorkflowConfig {
        let mut c = WorkflowConfig {
            producers: self.producers,
            consumers: self.consumers,
            steps: self.steps,
            bytes_per_rank_step: ByteSize::bytes(self.blocks_per_step * BLOCK),
            ..Default::default()
        };
        c.tuning.block_size = ByteSize::bytes(BLOCK);
        c.tuning.producer_slots = self.producer_slots;
        c.tuning.high_water_mark = self.high_water_mark;
        c.tuning.concurrent_transfer = self.concurrent_transfer;
        c.tuning.preserve = if self.preserve {
            PreserveMode::Preserve
        } else {
            PreserveMode::NoPreserve
        };
        c.tuning.routing = self.routing;
        c.tuning.recovery = self.recovery;
        c
    }

    fn des_spec(&self) -> WorkflowSpec {
        let mut s = WorkflowSpec::synthetic(
            zipper_apps::Complexity::Linear,
            self.producers,
            self.consumers,
            self.blocks_per_step * BLOCK,
            BLOCK,
        );
        s.steps = self.steps;
        s.ranks_per_node = 2;
        s.producer_slots = self.producer_slots;
        s.high_water_mark = self.high_water_mark;
        s.concurrent_transfer = self.concurrent_transfer;
        s.preserve = self.preserve;
        s.routing = self.routing;
        s.chaos = (!self.chaos.is_empty()).then(|| self.chaos.clone());
        s.recovery = self.recovery;
        s.backpressure = self.backpressure.clone();
        s
    }

    fn net_options(&self) -> NetworkOptions {
        match &self.backpressure {
            Some(script) => NetworkOptions::default().with_backpressure(script.clone()),
            None => NetworkOptions::default(),
        }
    }

    /// Run on the threaded substrate with full tracing + causal edges.
    fn run_threaded(&self) -> WorkflowReport {
        let cfg = self.threaded_config();
        let steps = cfg.steps;
        let slab = cfg.bytes_per_rank_step.as_u64() as usize;
        let produce = move |rank: Rank, writer: &zipper_core::ZipperWriter| {
            for s in 0..steps {
                let payload = vec![rank.0 as u8; slab];
                writer.write_slab(StepId(s), GlobalPos::default(), payload.into());
            }
        };
        let consume = |_: Rank, reader: &zipper_core::ZipperReader| {
            while reader.read().is_some() {}
        };
        let trace = TraceOptions::full().with_causal();
        if self.chaos.is_empty() {
            let (report, _, _): (_, Vec<()>, WorkflowPolicies) = run_workflow_recorded(
                &cfg,
                self.net_options(),
                StorageOptions::Memory,
                trace,
                produce,
                consume,
            );
            report.assert_complete();
            report
        } else {
            let (report, _, _): (_, Vec<()>, WorkflowPolicies) = run_workflow_chaos(
                &cfg,
                self.net_options(),
                StorageOptions::Memory,
                trace,
                &self.chaos,
                produce,
                consume,
            );
            assert!(report.failures.is_empty(), "{:?}", report.failures);
            report
        }
    }

    /// Run on the DES with causal edges; return the span trace and the
    /// model-reclassified edge log.
    fn run_des(&self) -> (TraceLog, CausalLog) {
        let spec = self.des_spec();
        let layout = ClusterLayout::new(&spec, 0);
        let mut sim = hpcsim::Simulator::new(sim_config(&spec, &layout));
        sim.set_trace_detail(true);
        sim.enable_causal();
        let _policies = build_recorded(&mut sim, &spec, &layout);
        let r = sim.run();
        assert!(r.is_clean(), "DES run not clean: {r:?}");
        let mut causal = sim.take_causal().expect("causal enabled");
        reclassify_causal(&mut causal);
        (sim.into_trace(), causal)
    }
}

/// Extract the critical path, check the attribution invariant (buckets
/// sum to the graph makespan within 1 %), and return the structural
/// signature.
fn path_signature(name: &str, graph: &CausalGraph) -> Vec<String> {
    let path = CriticalPath::extract(graph)
        .unwrap_or_else(|| panic!("{name}: no critical path extracted"));
    let total = path.attribution.total().as_secs_f64();
    let makespan = path.attribution.makespan.as_secs_f64();
    assert!(makespan > 0.0, "{name}: empty makespan");
    let err = (total - makespan).abs() / makespan;
    assert!(
        err <= 0.01,
        "{name}: attribution {total}s vs makespan {makespan}s ({:.2}% off)\n{}",
        err * 100.0,
        path.attribution.table(),
    );
    path.signature(graph)
}

/// Run both substrates, assert the graph-level structural conformance
/// (identical cross-edge profiles) and the per-substrate path
/// invariants, and return both path signatures (threaded, DES).
fn assert_conformant(name: &str, sc: &Scenario) -> (Vec<String>, Vec<String>) {
    let report = sc.run_threaded();
    let tg = report.causal_graph();
    let t_sig = path_signature(&format!("{name} threaded"), &tg);

    let (trace, causal) = sc.run_des();
    let dg = CausalGraph::build(&trace, &causal);
    let d_sig = path_signature(&format!("{name} DES"), &dg);

    assert_eq!(
        tg.edge_profile(),
        dg.edge_profile(),
        "{name}: causal graph structure diverges across substrates",
    );
    for (which, sig) in [("threaded", &t_sig), ("DES", &d_sig)] {
        assert_eq!(
            sig.last().map(String::as_str),
            Some("·"),
            "{name} {which}: path must reach the virtual sink: {sig:?}"
        );
        assert_eq!(
            sig.get(sig.len().saturating_sub(2)).map(String::as_str),
            Some("ana/app"),
            "{name} {which}: path must drain through analysis: {sig:?}"
        );
    }
    (t_sig, d_sig)
}

/// Config B: round-robin + concurrent transfer + Preserve, high-water
/// mark at run size so no steals. The path must thread compute → send →
/// wire → receive → analysis on both substrates.
#[test]
fn config_b_critical_paths_conform() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8,
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        ..Scenario::default()
    };
    let (t_sig, d_sig) = assert_conformant("config B", &sc);
    assert_eq!(
        t_sig, d_sig,
        "config B: single no-slack chain — critical paths must be identical"
    );
    let joined = t_sig.join(" ");
    assert!(
        joined.contains("wire:"),
        "the path must cross the data wire: {joined}"
    );
    assert!(
        !joined.contains("steal:"),
        "hwm at run size: no steal edges on the path: {joined}"
    );
}

/// The Config C backpressure script (same as `policy_conformance`): wire
/// 2 held until 3 cumulative steals, wire 4 until a 4th.
fn config_c_script(producers: usize) -> BackpressureScript {
    let mut script = BackpressureScript::new();
    for p in 0..producers {
        script = script
            .with(Rank(p as u32), 2, GateRule::OpenAfterSteals(3))
            .with(Rank(p as u32), 4, GateRule::OpenAfterSteals(4));
    }
    script
}

/// Config C: scripted partial stealing. Both graphs carry the same gate
/// holds and steal edges; the last routed block (ordinal 8) is stolen on
/// both substrates, so both paths drain through the stolen block's PFS
/// fetch even though the route *into* the consumer differs by clock (the
/// threaded wire is the slow leg; the DES PFS model is).
#[test]
fn config_c_critical_paths_conform() {
    let sc = Scenario {
        producers: 2,
        consumers: 2,
        steps: 2,
        blocks_per_step: 4,
        producer_slots: 16,
        high_water_mark: 8, // == total blocks per rank: no unscripted steals
        concurrent_transfer: true,
        preserve: false,
        routing: RoutingPolicy::RoundRobin,
        backpressure: Some(config_c_script(2)),
        ..Scenario::default()
    };
    let (t_sig, d_sig) = assert_conformant("config C", &sc);
    for (which, sig) in [("threaded", &t_sig), ("DES", &d_sig)] {
        let joined = sig.join(" ");
        assert!(
            joined.contains("pfs:ana/read=>ana/read"),
            "config C {which}: the stolen final block binds via PFS: {joined}"
        );
        assert!(
            joined.contains("queue:ana/read=>ana/app"),
            "config C {which}: the fetch feeds the analysis queue: {joined}"
        );
    }
}

/// Config E: recovery. A PFS write fault retires and revives producer
/// 0's writer; a scripted crash kills consumer 1 and the restart
/// supervisor replays its backlog. Both substrates must degrade *and
/// heal* through the same causal structure.
#[test]
fn config_e_critical_paths_conform() {
    let sc = Scenario {
        high_water_mark: 0,
        concurrent_transfer: true,
        preserve: true,
        routing: RoutingPolicy::RoundRobin,
        recovery: RecoveryPolicy {
            writer_cooldown: Duration::from_millis(1),
            max_writer_revivals: 1,
            max_consumer_restarts: 1,
        },
        chaos: ChaosPlan::new()
            .with(ChaosEntity::Sender(Rank(0)), 1, ChaosFault::DetachSender)
            .with(ChaosEntity::Sender(Rank(1)), 1, ChaosFault::DetachSender)
            .with(
                ChaosEntity::Sender(Rank(1)),
                2,
                ChaosFault::DelayWire(Duration::from_millis(1)),
            )
            .with(ChaosEntity::Writer(Rank(0)), 2, ChaosFault::PfsWriteFail)
            .with(ChaosEntity::Analysis(Rank(1)), 3, ChaosFault::CrashApp),
        ..Scenario::default()
    };
    let (t_sig, d_sig) = assert_conformant("config E", &sc);
    // The DES clock is deterministic: its path always rides the steal
    // route and binds the stolen block through its PFS fetch.
    let d = d_sig.join(" ");
    assert!(
        d.contains("steal:sim/writer=>ana/recv") && d.contains("pfs:ana/read=>ana/read"),
        "config E DES: detached senders drain via steal + PFS: {d}"
    );
    // The threaded wall clock picks among several no-slack chains run to
    // run (the steal route or the EOS-triggered drain); every one of
    // them crosses from the simulation side into analysis.
    let t = t_sig.join(" ");
    assert!(
        t.contains("=>ana"),
        "config E threaded: the path must cross into the analysis side: {t}"
    );
}
