//! Shutdown races: the teardown orderings that used to hang or abort the
//! runtime. Every scenario here must end with the failure *typed* in the
//! [`WorkflowReport`] (or a `Result` at the queue layer) — never a hang,
//! which is why each workflow runs under a hard test-level deadline.

use bytes::Bytes;
use std::sync::mpsc;
use std::time::Duration;
use zipper_core::BlockQueue;
use zipper_types::block::deterministic_payload;
use zipper_types::{
    Block, BlockId, ByteSize, GlobalPos, Rank, RuntimeError, StepId, WorkflowConfig,
};
use zipper_workflow::{run_workflow, NetworkOptions, StorageOptions, WorkflowReport};

/// Run `f` on its own thread and panic if it does not finish within
/// `deadline` — the "never hang" half of every assertion in this file.
fn with_deadline<T: Send + 'static>(
    deadline: Duration,
    name: &str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(format!("deadline-{name}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn deadline thread");
    let out = rx
        .recv_timeout(deadline)
        .unwrap_or_else(|_| panic!("{name}: runtime hung past {deadline:?}"));
    thread.join().expect("deadline thread itself panicked");
    out
}

fn cfg() -> WorkflowConfig {
    let mut cfg = WorkflowConfig {
        producers: 2,
        consumers: 1,
        steps: 6,
        bytes_per_rank_step: ByteSize::kib(64),
        ..Default::default()
    };
    cfg.tuning.block_size = ByteSize::kib(8);
    cfg.tuning.producer_slots = 4;
    cfg.tuning.high_water_mark = 2;
    // Back-stop for anything this suite gets wrong: a leaked stream trips
    // the watchdog long before the test deadline.
    cfg.tuning.eos_timeout = Some(Duration::from_secs(5));
    cfg
}

/// Pushing into a closed queue is a typed error, not a panic — the
/// shutdown race where a runtime thread is mid-`push` while the consumer
/// side tears the queue down.
#[test]
fn push_after_close_is_an_error_not_a_panic() {
    let q = BlockQueue::new(4);
    let id = BlockId::new(Rank(0), StepId(0), 0);
    let block = Block::from_payload(
        Rank(0),
        StepId(0),
        0,
        1,
        GlobalPos::default(),
        deterministic_payload(id, 64),
    );
    q.push(block.clone()).unwrap();
    q.close();
    assert!(q.push(block).is_err(), "push after close must refuse");
    // The block accepted before the close still drains.
    assert!(q.pop().0.is_some());
    assert!(q.pop().0.is_none());
}

/// A producer application that dies mid-step: the panic is caught, the
/// rank's runtime tears down through its drop guards (the sender still
/// flushes EOS, so consumers terminate normally), and the report carries
/// the typed panic. The surviving producer's data all arrives.
#[test]
fn producer_app_panic_mid_step_is_reported_not_fatal() {
    let cfg = cfg();
    let healthy = cfg.steps * cfg.blocks_per_rank_step();
    let total = cfg.total_blocks();
    let (report, counts): (WorkflowReport, Vec<u64>) =
        with_deadline(Duration::from_secs(60), "producer-panic", move || {
            run_workflow(
                &cfg,
                NetworkOptions::default(),
                StorageOptions::Memory,
                |rank, writer| {
                    let steps = 6u64;
                    let slab = 64 << 10;
                    for s in 0..steps {
                        if rank == Rank(0) && s == 2 {
                            panic!("injected producer death at step {s}");
                        }
                        writer.write_slab(
                            StepId(s),
                            GlobalPos::default(),
                            Bytes::from(vec![rank.0 as u8; slab]),
                        );
                    }
                },
                |_r, reader| {
                    let mut n = 0u64;
                    while reader.read().is_some() {
                        n += 1;
                    }
                    n
                },
            )
        });
    let errors = report.errors();
    assert!(
        errors.iter().any(|e| matches!(
            e,
            RuntimeError::AppPanicked {
                rank: Rank(0),
                role: "producer app",
                ..
            }
        )),
        "expected the caught producer panic, got {errors:?}"
    );
    // The healthy producer's full output arrived; the dead one delivered
    // at least its pre-panic steps.
    let delivered: u64 = counts.iter().sum();
    assert!(
        delivered >= healthy,
        "surviving producer lost data: {delivered} < {healthy}"
    );
    assert!(delivered < total, "dead producer cannot have finished");
}

/// A consumer application that dies mid-stream: its reader's drop guard
/// closes the queue, the receiver switches to discarding (so producers
/// never block on the dead rank's full inbox), and the report carries both
/// the typed panic and the abandoned stream. Producers still finish their
/// entire output under the deadline.
#[test]
fn consumer_dropped_mid_stream_is_reported_and_producers_finish() {
    let cfg = cfg();
    let total = cfg.total_blocks();
    let (report, results): (WorkflowReport, Vec<u64>) =
        with_deadline(Duration::from_secs(60), "consumer-death", move || {
            run_workflow(
                &cfg,
                // Tiny inbox: without the receiver's discard path, the
                // producers would wedge on the dead consumer's backpressure.
                NetworkOptions::unthrottled(2),
                StorageOptions::Memory,
                |rank, writer| {
                    for s in 0..6u64 {
                        writer.write_slab(
                            StepId(s),
                            GlobalPos::default(),
                            Bytes::from(vec![rank.0 as u8; 64 << 10]),
                        );
                    }
                },
                |_r, reader| {
                    let mut n = 0u64;
                    while reader.read().is_some() {
                        n += 1;
                        if n == 3 {
                            panic!("injected consumer death after {n} blocks");
                        }
                    }
                    n
                },
            )
        });
    // The dead consumer produced no result…
    assert!(
        results.is_empty(),
        "a dead consumer must not yield a result"
    );
    // …but every producer still flushed its entire stream.
    assert_eq!(report.producer_total().blocks_written, total);
    let errors = report.errors();
    assert!(
        errors.iter().any(|e| matches!(
            e,
            RuntimeError::AppPanicked {
                role: "consumer app",
                ..
            }
        )),
        "expected the caught consumer panic, got {errors:?}"
    );
    assert!(
        errors
            .iter()
            .any(|e| matches!(e, RuntimeError::ReaderAbandoned { .. })),
        "expected the abandoned-stream report, got {errors:?}"
    );
}

/// Both shutdown races at once under repetition: a producer and a consumer
/// die in the same run, over several trials to widen the race windows. The
/// run must always terminate with typed errors — never hang, never abort.
#[test]
fn combined_producer_and_consumer_death_always_terminates() {
    for trial in 0..5 {
        let cfg = cfg();
        let (report, _results): (WorkflowReport, Vec<u64>) =
            with_deadline(Duration::from_secs(60), "combined-death", move || {
                run_workflow(
                    &cfg,
                    NetworkOptions::unthrottled(2),
                    StorageOptions::Memory,
                    move |rank, writer| {
                        for s in 0..6u64 {
                            if rank == Rank(1) && s == 3 {
                                panic!("injected producer death (trial {trial})");
                            }
                            writer.write_slab(
                                StepId(s),
                                GlobalPos::default(),
                                Bytes::from(vec![rank.0 as u8; 64 << 10]),
                            );
                        }
                    },
                    |_r, reader| {
                        let mut n = 0u64;
                        while reader.read().is_some() {
                            n += 1;
                            if n == 2 {
                                panic!("injected consumer death");
                            }
                        }
                        n
                    },
                )
            });
        let errors = report.errors();
        let producer_panics = errors
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    RuntimeError::AppPanicked {
                        role: "producer app",
                        ..
                    }
                )
            })
            .count();
        let consumer_panics = errors
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    RuntimeError::AppPanicked {
                        role: "consumer app",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(producer_panics, 1, "trial {trial}: {errors:?}");
        assert_eq!(consumer_panics, 1, "trial {trial}: {errors:?}");
    }
}
