//! Umbrella crate of the Zipper reproduction workspace: re-exports every
//! member crate so the runnable examples and cross-crate integration tests
//! have one dependency root. See README.md for the tour.

pub use hpcsim;
pub use zipper_apps;
pub use zipper_core;
pub use zipper_model;
pub use zipper_pfs;
pub use zipper_trace;
pub use zipper_transports;
pub use zipper_types;
pub use zipper_workflow;
